//! A sequential interpreter for the scalarized IR.
//!
//! The interpreter executes a [`ScalarProgram`] under a config binding,
//! modelling arrays as row-major buffers in a flat byte address space.
//! Every element load/store is reported to an [`Observer`] (the `machine`
//! crate's cache simulator implements this) together with its byte address,
//! so cache behavior can be measured exactly rather than estimated.

use crate::ir::{EExpr, ElemRef, LStmt, LoopNest, ScalarProgram};
use std::fmt;
use zlang::ast::{BinOp, ReduceOp, UnOp};
use zlang::ir::{ArrayId, ConfigBinding, Offset, RegionId, ScalarExpr, ScalarId};

/// Receives the interpreter's memory-access and arithmetic stream.
///
/// Addresses are byte addresses of 8-byte (f64) elements in a flat space;
/// distinct arrays occupy disjoint, cache-line-aligned extents.
pub trait Observer {
    /// An 8-byte element load at `addr`.
    fn load(&mut self, addr: u64);
    /// An 8-byte element store at `addr`.
    fn store(&mut self, addr: u64);
    /// `n` floating-point operations.
    fn flops(&mut self, n: u64);
    /// A loop nest is about to execute (once per dynamic execution).
    /// The simulated parallel runtime uses this to account ghost-region
    /// communication and overlap.
    fn nest_begin(&mut self, _nest: &LoopNest) {}
    /// A standalone reduction nest is about to execute.
    fn reduce_begin(&mut self) {}
    /// Whether this observer consumes the ordered per-element address
    /// stream. Defaults to `true` — any observer that looks at addresses
    /// (the cache simulator, the parallel runtime's ghost accounting)
    /// needs the sequential order the engines contract to deliver.
    /// Observers that ignore addresses (like [`NoopObserver`]) return
    /// `false`, which permits execution strategies that reorder or batch
    /// element accesses: the parallel tiled VM
    /// ([`Engine::VmPar`](crate::Engine::VmPar)) only fans ladders out
    /// under a passive observer and runs sequentially otherwise.
    fn wants_addresses(&self) -> bool {
        true
    }
}

/// An observer that ignores everything (pure functional execution).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    fn load(&mut self, _addr: u64) {}
    fn store(&mut self, _addr: u64) {}
    fn flops(&mut self, _n: u64) {}
    fn wants_addresses(&self) -> bool {
        false
    }
}

/// Counters accumulated over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Array element loads.
    pub loads: u64,
    /// Array element stores.
    pub stores: u64,
    /// Floating-point operations.
    pub flops: u64,
    /// Loop-nest iteration points executed.
    pub points: u64,
    /// Number of arrays that were allocated (touched).
    pub arrays_allocated: usize,
    /// Peak bytes of array storage allocated.
    pub peak_bytes: u64,
}

/// What class of failure an [`ExecError`] is — the execution supervisor
/// keys its degradation decisions off this, so every error site must tag
/// itself honestly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum ErrorKind {
    /// An out-of-region array access (a program bug, not an engine fault).
    Access,
    /// The bytecode compiler cannot lower the program (e.g. rank above the
    /// VM's limit).
    Lower,
    /// The instruction/step fuel budget ran out.
    Fuel,
    /// The wall-clock deadline passed mid-execution.
    Deadline,
    /// The engine trapped (an internal invariant failed at run time, or an
    /// injected fault).
    Trap,
    /// The bytecode verifier rejected the program.
    Verify,
    /// The simulated communication layer failed (message lost after all
    /// retries).
    Comm,
    /// Anything else.
    #[default]
    Other,
}

/// An execution error (out-of-region access, lowering failure, budget
/// exhaustion, trap, verification rejection, or comm failure).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecError {
    /// Which class of failure this is.
    pub kind: ErrorKind,
    /// Description of the failure.
    pub message: String,
}

impl ExecError {
    /// Creates an error of a given kind.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        ExecError {
            kind,
            message: message.into(),
        }
    }

    /// An out-of-region access error.
    pub fn access(message: impl Into<String>) -> Self {
        ExecError::new(ErrorKind::Access, message)
    }

    /// A lowering (bytecode compilation) error.
    pub fn lower(message: impl Into<String>) -> Self {
        ExecError::new(ErrorKind::Lower, message)
    }

    /// A fuel-exhaustion error.
    pub fn fuel() -> Self {
        ExecError::new(
            ErrorKind::Fuel,
            "execution fuel exhausted (raise the step budget)",
        )
    }

    /// A deadline-exceeded error.
    pub fn deadline() -> Self {
        ExecError::new(
            ErrorKind::Deadline,
            "execution deadline exceeded (raise the wall-clock budget)",
        )
    }

    /// An engine trap.
    pub fn trap(message: impl Into<String>) -> Self {
        ExecError::new(ErrorKind::Trap, message)
    }

    /// A bytecode-verification rejection.
    pub fn verify(message: impl Into<String>) -> Self {
        ExecError::new(ErrorKind::Verify, message)
    }

    /// A communication failure.
    pub fn comm(message: impl Into<String>) -> Self {
        ExecError::new(ErrorKind::Comm, message)
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "execution error: {}", self.message)
    }
}

impl std::error::Error for ExecError {}

struct ArrayBuf {
    base: u64,
    lo: Vec<i64>,
    dims: Vec<i64>,
    /// Dimensions collapsed by dimension contraction: extent 1, index
    /// ignored.
    collapsed: Vec<u8>,
    data: Vec<f64>,
}

impl ArrayBuf {
    /// Flat index of `idx + off`, or `None` if out of the declared region.
    fn flat(&self, idx: &[i64], off: &Offset) -> Option<usize> {
        let mut f: i64 = 0;
        // Index-based: `d` simultaneously indexes dims, lo, idx, and off.
        #[allow(clippy::needless_range_loop)]
        for d in 0..self.dims.len() {
            if self.collapsed.contains(&(d as u8)) {
                continue; // extent-1 dimension: contributes index 0
            }
            let i = idx[d] + off.0[d] - self.lo[d];
            if i < 0 || i >= self.dims[d] {
                return None;
            }
            f = f * self.dims[d] + i;
        }
        Some(f as usize)
    }

    fn addr(&self, flat: usize) -> u64 {
        self.base + (flat as u64) * 8
    }
}

/// The interpreter.
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use loopir::{Interp, NoopObserver};
/// use zlang::ir::ConfigBinding;
/// // Build a trivial scalarized program by hand: one nest copying A into B.
/// let p = zlang::compile(
///     "program t; region R = [1..4]; var A, B : [R] float; begin [R] A := 2.0; end")?;
/// let nest = loopir::LoopNest {
///     region: zlang::ir::RegionId(0),
///     structure: vec![1],
///     body: vec![loopir::ElemStmt {
///         target: loopir::ElemRef::Array(zlang::ir::ArrayId(0), zlang::ir::Offset(vec![0])),
///         rhs: loopir::EExpr::Const(2.0),
///     }],
///     cluster: 0,
///     temps: 0,
/// };
/// let sp = loopir::ScalarProgram { program: p, stmts: vec![loopir::LStmt::Nest(nest)] };
/// let mut interp = Interp::new(&sp, ConfigBinding::defaults(&sp.program));
/// let stats = interp.run(&mut NoopObserver)?;
/// assert_eq!(stats.stores, 4);
/// assert_eq!(interp.array(zlang::ir::ArrayId(0)).unwrap(), &[2.0; 4]);
/// # Ok(())
/// # }
/// ```
pub struct Interp<'p> {
    prog: &'p ScalarProgram,
    binding: ConfigBinding,
    arrays: Vec<Option<ArrayBuf>>,
    scalars: Vec<f64>,
    temps: Vec<f64>,
    stats: RunStats,
    next_base: u64,
    /// `(dim, value)` bindings from enclosing `LStmt::Outer` loops.
    outer_bound: Vec<(u8, i64)>,
    limits: crate::exec::ExecLimits,
    /// Remaining fuel for the current run (`u64::MAX` when unlimited);
    /// one unit is charged per loop-nest iteration point.
    fuel_left: u64,
    /// Points executed this run, used to pace the deadline check.
    ticks: u64,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter for a program under a config binding.
    pub fn new(prog: &'p ScalarProgram, binding: ConfigBinding) -> Self {
        Interp {
            prog,
            binding,
            arrays: (0..prog.program.arrays.len()).map(|_| None).collect(),
            scalars: vec![0.0; prog.program.scalars.len()],
            temps: Vec::new(),
            stats: RunStats::default(),
            next_base: 4096,
            outer_bound: Vec::new(),
            limits: crate::exec::ExecLimits::none(),
            fuel_left: u64::MAX,
            ticks: 0,
        }
    }

    /// Sets the resource budgets for subsequent runs; see
    /// [`ExecLimits`](crate::exec::ExecLimits). One unit of fuel is one
    /// loop-nest iteration point.
    pub fn set_limits(&mut self, limits: crate::exec::ExecLimits) {
        self.limits = limits;
    }

    /// Charges one iteration point against the budgets.
    #[inline]
    fn spend_point(&mut self) -> Result<(), ExecError> {
        if self.fuel_left == 0 {
            return Err(ExecError::fuel());
        }
        self.fuel_left -= 1;
        self.ticks += 1;
        // The deadline needs a clock read, so check it only every 4096
        // points — more than often enough at nanoseconds per point.
        if self.ticks & 0xFFF == 0 {
            if let Some(d) = self.limits.deadline {
                if std::time::Instant::now() >= d {
                    return Err(ExecError::deadline());
                }
            }
        }
        Ok(())
    }

    /// Executes the program, reporting accesses to `obs`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on an out-of-region array access (declare
    /// arrays with halos large enough for their `@` offsets).
    pub fn run(&mut self, obs: &mut (impl Observer + ?Sized)) -> Result<RunStats, ExecError> {
        self.fuel_left = self.limits.fuel.unwrap_or(u64::MAX);
        self.ticks = 0;
        let stmts = &self.prog.stmts;
        self.exec_stmts(stmts, obs)?;
        Ok(self.stats)
    }

    /// The contents of an array, if it was allocated during the run.
    pub fn array(&self, id: ArrayId) -> Option<&[f64]> {
        self.arrays[id.0 as usize]
            .as_ref()
            .map(|b| b.data.as_slice())
    }

    /// Run statistics so far.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// The config binding in use.
    pub fn binding(&self) -> &ConfigBinding {
        &self.binding
    }

    fn ensure_alloc(&mut self, id: ArrayId) -> Result<(), ExecError> {
        if self.arrays[id.0 as usize].is_some() {
            return Ok(());
        }
        let decl = self.prog.program.array(id);
        let region = self.prog.program.region(decl.region);
        let bounds = region.bounds(&self.binding);
        let mut lo = Vec::with_capacity(bounds.len());
        let mut dims = Vec::with_capacity(bounds.len());
        let mut n: i64 = 1;
        for (d, &(l, h)) in bounds.iter().enumerate() {
            // Empty dimensions allocate zero elements; loops over the
            // region never execute, so no access can reach them.
            let extent = (h - l + 1).max(0);
            let collapsed = decl.collapsed.contains(&(d as u8));
            lo.push(l);
            dims.push(if collapsed { extent.min(1) } else { extent });
            if !collapsed {
                n = n.saturating_mul(extent);
            }
        }
        let bytes = (n as u64) * 8;
        // Cache-line align each array's base, staggering consecutive
        // allocations across cache sets (as a real allocator's headers and
        // padding do) so power-of-two array sizes do not alias
        // pathologically in direct-mapped caches.
        let stagger = ((self.stats.arrays_allocated as u64 * 7) % 128) * 64;
        let base = ((self.next_base + 63) & !63) + stagger;
        self.next_base = base + bytes;
        self.arrays[id.0 as usize] = Some(ArrayBuf {
            base,
            lo,
            dims,
            collapsed: decl.collapsed.clone(),
            data: vec![0.0; n as usize],
        });
        self.stats.arrays_allocated += 1;
        self.stats.peak_bytes += bytes;
        Ok(())
    }

    fn region_bounds(&self, r: RegionId) -> Vec<(i64, i64)> {
        self.prog.program.region(r).bounds(&self.binding)
    }

    /// The run-time value of a config variable: integer configs come from
    /// the binding (overridable), float configs are compile-time constants.
    fn config_value(&self, c: zlang::ir::ConfigId) -> f64 {
        let d = &self.prog.program.configs[c.0 as usize];
        if d.ty == zlang::ast::Type::Int {
            self.binding.get(c) as f64
        } else {
            d.default
        }
    }

    fn scalar_expr(&self, e: &ScalarExpr) -> f64 {
        match e {
            ScalarExpr::Const(v) => *v,
            ScalarExpr::ScalarRef(s) => self.scalars[s.0 as usize],
            ScalarExpr::ConfigRef(c) => self.config_value(*c),
            ScalarExpr::Unary(UnOp::Neg, inner) => -self.scalar_expr(inner),
            ScalarExpr::Binary(op, l, r) => binop(*op, self.scalar_expr(l), self.scalar_expr(r)),
            ScalarExpr::Call(i, args) => {
                let vals: Vec<f64> = args.iter().map(|a| self.scalar_expr(a)).collect();
                i.eval(&vals)
            }
        }
    }

    fn exec_stmts(
        &mut self,
        stmts: &[LStmt],
        obs: &mut (impl Observer + ?Sized),
    ) -> Result<(), ExecError> {
        for s in stmts {
            match s {
                LStmt::Nest(n) => self.exec_nest(n, obs)?,
                LStmt::Scalar { lhs, rhs } => {
                    self.scalars[lhs.0 as usize] = self.scalar_expr(rhs);
                }
                LStmt::ReduceNest {
                    lhs,
                    op,
                    region,
                    structure: _,
                    rhs,
                } => {
                    self.exec_reduce(*lhs, *op, *region, rhs, obs)?;
                }
                LStmt::Outer {
                    region,
                    dim,
                    reverse,
                    body,
                } => {
                    let (lo, hi) = self.region_bounds(*region)[*dim as usize];
                    let iter: Box<dyn Iterator<Item = i64>> = if *reverse {
                        Box::new((lo..=hi).rev())
                    } else {
                        Box::new(lo..=hi)
                    };
                    for v in iter {
                        self.outer_bound.push((*dim, v));
                        let r = self.exec_stmts(body, obs);
                        self.outer_bound.pop();
                        r?;
                    }
                }
                LStmt::For {
                    var,
                    lo,
                    hi,
                    down,
                    body,
                } => {
                    let lo = self.scalar_expr(lo).round() as i64;
                    let hi = self.scalar_expr(hi).round() as i64;
                    let iter: Box<dyn Iterator<Item = i64>> = if *down {
                        Box::new((hi..=lo).rev())
                    } else {
                        Box::new(lo..=hi)
                    };
                    for k in iter {
                        self.scalars[var.0 as usize] = k as f64;
                        self.exec_stmts(body, obs)?;
                    }
                }
                LStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    if self.scalar_expr(cond) != 0.0 {
                        self.exec_stmts(then_body, obs)?;
                    } else {
                        self.exec_stmts(else_body, obs)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Builds the iteration order for a region under a structure vector:
    /// per *loop* (outer..inner), the dimension it iterates and direction.
    fn loop_order(&self, region: RegionId, structure: &[i8]) -> Vec<(usize, bool, i64, i64)> {
        let bounds = self.region_bounds(region);
        structure
            .iter()
            .map(|&p| {
                let dim = (p.unsigned_abs() as usize) - 1;
                let (lo, hi) = bounds[dim];
                (dim, p > 0, lo, hi)
            })
            .collect()
    }

    fn exec_nest(
        &mut self,
        nest: &LoopNest,
        obs: &mut (impl Observer + ?Sized),
    ) -> Result<(), ExecError> {
        // Pre-allocate every array the nest touches.
        for (a, _) in nest.loads() {
            self.ensure_alloc(a)?;
        }
        for (a, _) in nest.stores() {
            self.ensure_alloc(a)?;
        }
        if self.temps.len() < nest.temps as usize {
            self.temps.resize(nest.temps as usize, 0.0);
        }
        obs.nest_begin(nest);
        let order = self.loop_order(nest.region, &nest.structure);
        if order.iter().any(|&(_, _, lo, hi)| hi < lo) {
            return Ok(()); // empty region
        }
        let rank = order.len();
        let full_rank = self.prog.program.region(nest.region).rank();
        let mut idx = vec![0i64; full_rank];
        // Dimensions bound by enclosing Outer loops keep their values.
        for &(d, v) in &self.outer_bound {
            if (d as usize) < full_rank {
                idx[d as usize] = v;
            }
        }
        // Odometer over the loops, outermost = order[0].
        let mut cur: Vec<i64> = order
            .iter()
            .map(|&(_, up, lo, hi)| if up { lo } else { hi })
            .collect();
        'outer: loop {
            for (l, &(dim, _, _, _)) in order.iter().enumerate() {
                idx[dim] = cur[l];
            }
            self.spend_point()?;
            self.exec_point(nest, &idx, obs)?;
            self.stats.points += 1;
            // Advance the odometer from the innermost loop.
            let mut l = rank;
            loop {
                if l == 0 {
                    break 'outer;
                }
                l -= 1;
                let (_, up, lo, hi) = order[l];
                if up {
                    cur[l] += 1;
                    if cur[l] <= hi {
                        break;
                    }
                    cur[l] = lo;
                } else {
                    cur[l] -= 1;
                    if cur[l] >= lo {
                        break;
                    }
                    cur[l] = hi;
                }
            }
        }
        Ok(())
    }

    fn exec_point(
        &mut self,
        nest: &LoopNest,
        idx: &[i64],
        obs: &mut (impl Observer + ?Sized),
    ) -> Result<(), ExecError> {
        for stmt in &nest.body {
            let v = self.eval_elem(&stmt.rhs, idx, obs)?;
            match &stmt.target {
                ElemRef::Array(a, off) => {
                    let buf = self.arrays[a.0 as usize].as_ref().expect(
                        "invariant: exec_nest/exec_reduce pre-allocate every referenced array",
                    );
                    let Some(flat) = buf.flat(idx, off) else {
                        return Err(self.oob(*a, idx, off));
                    };
                    let addr = buf.addr(flat);
                    self.arrays[a.0 as usize]
                        .as_mut()
                        .expect(
                            "invariant: exec_nest/exec_reduce pre-allocate every referenced array",
                        )
                        .data[flat] = v;
                    obs.store(addr);
                    self.stats.stores += 1;
                }
                ElemRef::Temp(t) => {
                    self.temps[t.0 as usize] = v;
                }
                ElemRef::Reduce(s, op) => {
                    let acc = &mut self.scalars[s.0 as usize];
                    *acc = match op {
                        ReduceOp::Sum => *acc + v,
                        ReduceOp::Prod => *acc * v,
                        ReduceOp::Max => acc.max(v),
                        ReduceOp::Min => acc.min(v),
                    };
                    obs.flops(1);
                    self.stats.flops += 1;
                }
            }
        }
        Ok(())
    }

    fn oob(&self, a: ArrayId, idx: &[i64], off: &Offset) -> ExecError {
        let decl = self.prog.program.array(a);
        let pt: Vec<i64> = idx.iter().zip(&off.0).map(|(i, d)| i + d).collect();
        ExecError::access(format!(
            "access to `{}` at {:?} is outside its declared region (declare a halo?)",
            decl.name, pt
        ))
    }

    fn eval_elem(
        &mut self,
        e: &EExpr,
        idx: &[i64],
        obs: &mut (impl Observer + ?Sized),
    ) -> Result<f64, ExecError> {
        Ok(match e {
            EExpr::Load(a, off) => {
                let buf = self.arrays[a.0 as usize]
                    .as_ref()
                    .expect("invariant: exec_nest/exec_reduce pre-allocate every referenced array");
                let Some(flat) = buf.flat(idx, off) else {
                    return Err(self.oob(*a, idx, off));
                };
                let addr = buf.addr(flat);
                let v = buf.data[flat];
                obs.load(addr);
                self.stats.loads += 1;
                v
            }
            EExpr::Temp(t) => self.temps[t.0 as usize],
            EExpr::ScalarRef(s) => self.scalars[s.0 as usize],
            EExpr::ConfigRef(c) => self.config_value(*c),
            EExpr::Const(v) => *v,
            EExpr::Index(d) => idx[*d as usize] as f64,
            EExpr::Unary(UnOp::Neg, inner) => {
                let v = -self.eval_elem(inner, idx, obs)?;
                obs.flops(1);
                self.stats.flops += 1;
                v
            }
            EExpr::Binary(op, l, r) => {
                let lv = self.eval_elem(l, idx, obs)?;
                let rv = self.eval_elem(r, idx, obs)?;
                obs.flops(1);
                self.stats.flops += 1;
                binop(*op, lv, rv)
            }
            EExpr::Call(i, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval_elem(a, idx, obs)?);
                }
                obs.flops(1);
                self.stats.flops += 1;
                i.eval(&vals)
            }
        })
    }

    fn exec_reduce(
        &mut self,
        lhs: ScalarId,
        op: ReduceOp,
        region: RegionId,
        rhs: &EExpr,
        obs: &mut (impl Observer + ?Sized),
    ) -> Result<(), ExecError> {
        let mut reads = Vec::new();
        rhs.for_each_load(&mut |a, _| reads.push(a));
        for a in reads {
            self.ensure_alloc(a)?;
        }
        obs.reduce_begin();
        let bounds = self.region_bounds(region);
        let mut acc = match op {
            ReduceOp::Sum => 0.0,
            ReduceOp::Prod => 1.0,
            ReduceOp::Max => f64::NEG_INFINITY,
            ReduceOp::Min => f64::INFINITY,
        };
        if bounds.iter().all(|&(lo, hi)| hi >= lo) {
            let rank = bounds.len();
            let mut idx: Vec<i64> = bounds.iter().map(|&(lo, _)| lo).collect();
            'outer: loop {
                self.spend_point()?;
                let v = self.eval_elem(rhs, &idx, obs)?;
                self.stats.points += 1;
                acc = match op {
                    ReduceOp::Sum => acc + v,
                    ReduceOp::Prod => acc * v,
                    ReduceOp::Max => acc.max(v),
                    ReduceOp::Min => acc.min(v),
                };
                obs.flops(1);
                self.stats.flops += 1;
                let mut d = rank;
                loop {
                    if d == 0 {
                        break 'outer;
                    }
                    d -= 1;
                    idx[d] += 1;
                    if idx[d] <= bounds[d].1 {
                        break;
                    }
                    idx[d] = bounds[d].0;
                }
            }
        }
        self.scalars[lhs.0 as usize] = acc;
        Ok(())
    }
}

impl crate::exec::Executor for Interp<'_> {
    fn execute(&mut self, obs: &mut dyn Observer) -> Result<crate::exec::RunOutcome, ExecError> {
        let stats = self.run(obs)?;
        Ok(crate::exec::RunOutcome::new(self.scalars.clone(), stats))
    }

    fn set_limits(&mut self, limits: crate::exec::ExecLimits) {
        Interp::set_limits(self, limits);
    }
}

pub(crate) fn binop(op: BinOp, l: f64, r: f64) -> f64 {
    match op {
        BinOp::Add => l + r,
        BinOp::Sub => l - r,
        BinOp::Mul => l * r,
        BinOp::Div => l / r,
        BinOp::Lt => (l < r) as u8 as f64,
        BinOp::Le => (l <= r) as u8 as f64,
        BinOp::Gt => (l > r) as u8 as f64,
        BinOp::Ge => (l >= r) as u8 as f64,
        BinOp::Eq => (l == r) as u8 as f64,
        BinOp::Ne => (l != r) as u8 as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{EExpr, ElemRef, ElemStmt, LStmt, LoopNest, ScalarProgram, TempId};
    use zlang::ir::{ArrayId, Offset, RegionId};

    fn two_array_prog() -> zlang::ir::Program {
        zlang::compile(
            "program t; config n : int = 4; region R = [1..n, 1..n]; \
             var A, B : [R] float; var s : float; var k : int; begin end",
        )
        .unwrap()
    }

    fn nest(body: Vec<ElemStmt>, structure: Vec<i8>, temps: u32) -> LoopNest {
        LoopNest {
            region: RegionId(0),
            structure,
            body,
            cluster: 0,
            temps,
        }
    }

    fn store(a: u32, rhs: EExpr) -> ElemStmt {
        ElemStmt {
            target: ElemRef::Array(ArrayId(a), Offset(vec![0, 0])),
            rhs,
        }
    }

    #[test]
    fn fills_array_row_major() {
        let p = two_array_prog();
        let sp = ScalarProgram {
            program: p,
            stmts: vec![LStmt::Nest(nest(
                vec![store(
                    0,
                    EExpr::Binary(
                        zlang::ast::BinOp::Add,
                        Box::new(EExpr::Binary(
                            zlang::ast::BinOp::Mul,
                            Box::new(EExpr::Index(0)),
                            Box::new(EExpr::Const(10.0)),
                        )),
                        Box::new(EExpr::Index(1)),
                    ),
                )],
                vec![1, 2],
                0,
            ))],
        };
        let mut i = Interp::new(&sp, ConfigBinding::defaults(&sp.program));
        let st = i.run(&mut NoopObserver).unwrap();
        assert_eq!(st.points, 16);
        assert_eq!(st.stores, 16);
        let a = i.array(ArrayId(0)).unwrap();
        assert_eq!(a[0], 11.0); // (1,1)
        assert_eq!(a[1], 12.0); // (1,2)
        assert_eq!(a[4], 21.0); // (2,1)
    }

    #[test]
    fn loop_reversal_changes_semantics_of_carried_reads() {
        // A(i) := A(i-1)+1 over [2..n] with A(1)=5:
        // increasing: propagates (cascade); decreasing: each reads old value.
        let p = zlang::compile(
            "program t; config n : int = 5; region RH = [1..n]; region R = [2..n]; \
             var A : [RH] float; begin end",
        )
        .unwrap();
        let init = LoopNest {
            region: RegionId(0),
            structure: vec![1],
            body: vec![ElemStmt {
                target: ElemRef::Array(ArrayId(0), Offset(vec![0])),
                rhs: EExpr::Const(5.0),
            }],
            cluster: 0,
            temps: 0,
        };
        let cascade = |structure: Vec<i8>| LoopNest {
            region: RegionId(1),
            structure,
            body: vec![ElemStmt {
                target: ElemRef::Array(ArrayId(0), Offset(vec![0])),
                rhs: EExpr::Binary(
                    zlang::ast::BinOp::Add,
                    Box::new(EExpr::Load(ArrayId(0), Offset(vec![-1]))),
                    Box::new(EExpr::Const(1.0)),
                ),
            }],
            cluster: 1,
            temps: 0,
        };
        let run = |structure: Vec<i8>| {
            let sp = ScalarProgram {
                program: zlang::compile(
                    "program t; config n : int = 5; region RH = [1..n]; region R = [2..n]; \
                     var A : [RH] float; begin end",
                )
                .unwrap(),
                stmts: vec![LStmt::Nest(init.clone()), LStmt::Nest(cascade(structure))],
            };
            let mut i = Interp::new(&sp, ConfigBinding::defaults(&sp.program));
            i.run(&mut NoopObserver).unwrap();
            i.array(ArrayId(0)).unwrap().to_vec()
        };
        let _ = &p;
        assert_eq!(run(vec![1]), vec![5.0, 6.0, 7.0, 8.0, 9.0]);
        assert_eq!(run(vec![-1]), vec![5.0, 6.0, 6.0, 6.0, 6.0]);
    }

    #[test]
    fn temps_carry_within_a_point() {
        let p = two_array_prog();
        let sp = ScalarProgram {
            program: p,
            stmts: vec![LStmt::Nest(nest(
                vec![
                    ElemStmt {
                        target: ElemRef::Temp(TempId(0)),
                        rhs: EExpr::Const(3.0),
                    },
                    store(
                        1,
                        EExpr::Binary(
                            zlang::ast::BinOp::Mul,
                            Box::new(EExpr::Temp(TempId(0))),
                            Box::new(EExpr::Temp(TempId(0))),
                        ),
                    ),
                ],
                vec![1, 2],
                1,
            ))],
        };
        let mut i = Interp::new(&sp, ConfigBinding::defaults(&sp.program));
        let st = i.run(&mut NoopObserver).unwrap();
        assert_eq!(i.array(ArrayId(1)).unwrap()[0], 9.0);
        // Temps generate no memory traffic.
        assert_eq!(st.loads, 0);
        assert_eq!(st.stores, 16);
    }

    #[test]
    fn out_of_region_access_errors() {
        let p = two_array_prog();
        let sp = ScalarProgram {
            program: p,
            stmts: vec![LStmt::Nest(nest(
                vec![store(0, EExpr::Load(ArrayId(1), Offset(vec![-1, 0])))],
                vec![1, 2],
                0,
            ))],
        };
        let mut i = Interp::new(&sp, ConfigBinding::defaults(&sp.program));
        let e = i.run(&mut NoopObserver).unwrap_err();
        assert!(e.message.contains("halo"), "{e}");
    }

    #[test]
    fn peak_bytes_counts_only_touched_arrays() {
        let p = two_array_prog();
        let sp = ScalarProgram {
            program: p,
            stmts: vec![LStmt::Nest(nest(
                vec![store(0, EExpr::Const(1.0))],
                vec![1, 2],
                0,
            ))],
        };
        let mut i = Interp::new(&sp, ConfigBinding::defaults(&sp.program));
        let st = i.run(&mut NoopObserver).unwrap();
        assert_eq!(st.arrays_allocated, 1);
        assert_eq!(st.peak_bytes, 16 * 8);
    }

    #[test]
    fn reduce_nest_accumulates() {
        let p = two_array_prog();
        let sp = ScalarProgram {
            program: p,
            stmts: vec![
                LStmt::Nest(nest(vec![store(0, EExpr::Const(2.0))], vec![1, 2], 0)),
                LStmt::ReduceNest {
                    lhs: ScalarId(0),
                    op: ReduceOp::Sum,
                    region: RegionId(0),
                    structure: vec![1, 2],
                    rhs: EExpr::Load(ArrayId(0), Offset(vec![0, 0])),
                },
            ],
        };
        let mut i = Interp::new(&sp, ConfigBinding::defaults(&sp.program));
        let out = crate::exec::Executor::execute(&mut i, &mut NoopObserver).unwrap();
        assert_eq!(out.scalar(ScalarId(0)), 32.0);
    }

    #[test]
    fn for_and_if_control_flow() {
        let p = two_array_prog();
        // for k := 1 to 3: A := A + 1 ; if (k-ish cond) unused — just check loop count via stats
        let sp = ScalarProgram {
            program: p,
            stmts: vec![LStmt::For {
                var: ScalarId(1),
                lo: ScalarExpr::Const(1.0),
                hi: ScalarExpr::Const(3.0),
                down: false,
                body: vec![LStmt::Nest(nest(
                    vec![store(
                        0,
                        EExpr::Binary(
                            zlang::ast::BinOp::Add,
                            Box::new(EExpr::Load(ArrayId(0), Offset(vec![0, 0]))),
                            Box::new(EExpr::Const(1.0)),
                        ),
                    )],
                    vec![1, 2],
                    0,
                ))],
            }],
        };
        let mut i = Interp::new(&sp, ConfigBinding::defaults(&sp.program));
        let st = i.run(&mut NoopObserver).unwrap();
        assert_eq!(st.points, 48);
        assert_eq!(i.array(ArrayId(0)).unwrap()[0], 3.0);
    }

    #[test]
    fn downto_loop_runs_reversed() {
        let p = two_array_prog();
        let sp = ScalarProgram {
            program: p,
            stmts: vec![LStmt::For {
                var: ScalarId(1),
                lo: ScalarExpr::Const(3.0),
                hi: ScalarExpr::Const(1.0),
                down: true,
                body: vec![LStmt::Scalar {
                    lhs: ScalarId(0),
                    rhs: ScalarExpr::Binary(
                        zlang::ast::BinOp::Add,
                        Box::new(ScalarExpr::Binary(
                            zlang::ast::BinOp::Mul,
                            Box::new(ScalarExpr::ScalarRef(ScalarId(0))),
                            Box::new(ScalarExpr::Const(10.0)),
                        )),
                        Box::new(ScalarExpr::ScalarRef(ScalarId(1))),
                    ),
                }],
            }],
        };
        let mut i = Interp::new(&sp, ConfigBinding::defaults(&sp.program));
        let out = crate::exec::Executor::execute(&mut i, &mut NoopObserver).unwrap();
        assert_eq!(out.scalar(ScalarId(0)), 321.0);
    }

    #[test]
    fn column_major_structure_visits_all_points() {
        let p = two_array_prog();
        let sp = ScalarProgram {
            program: p,
            stmts: vec![LStmt::Nest(nest(
                vec![store(0, EExpr::Const(7.0))],
                vec![-2, -1],
                0,
            ))],
        };
        let mut i = Interp::new(&sp, ConfigBinding::defaults(&sp.program));
        let st = i.run(&mut NoopObserver).unwrap();
        assert_eq!(st.points, 16);
        assert!(i.array(ArrayId(0)).unwrap().iter().all(|&v| v == 7.0));
    }
}
