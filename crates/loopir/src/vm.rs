//! A register virtual machine executing `bytecode`
//! compiled from a [`ScalarProgram`].
//!
//! The VM is observationally identical to the tree-walking
//! [`Interp`](crate::Interp) — bit-equal scalar results, equal
//! [`RunStats`], and the same ordered address stream through the
//! [`Observer`] — but resolves bounds, strides, and control flow once at
//! compile time instead of at every iteration point. The differential
//! suite in `tests/vm_differential.rs` holds the two engines equal over
//! every benchmark at every optimization level.
//!
//! ```
//! # fn main() -> Result<(), loopir::ExecError> {
//! use loopir::{Executor, NoopObserver, Vm};
//! use zlang::ir::ConfigBinding;
//! let p = zlang::compile(
//!     "program t; region R = [1..4]; var A : [R] float; begin end").unwrap();
//! let nest = loopir::LoopNest {
//!     region: zlang::ir::RegionId(0),
//!     structure: vec![1],
//!     body: vec![loopir::ElemStmt {
//!         target: loopir::ElemRef::Array(zlang::ir::ArrayId(0), zlang::ir::Offset(vec![0])),
//!         rhs: loopir::EExpr::Const(2.0),
//!     }],
//!     cluster: 0,
//!     temps: 0,
//! };
//! let sp = loopir::ScalarProgram { program: p, stmts: vec![loopir::LStmt::Nest(nest)] };
//! let mut vm = Vm::new(&sp, ConfigBinding::defaults(&sp.program))?;
//! let outcome = vm.execute(&mut NoopObserver)?;
//! assert_eq!(outcome.stats.stores, 4);
//! assert_eq!(vm.array(zlang::ir::ArrayId(0)).unwrap(), &[2.0; 4]);
//! # Ok(())
//! # }
//! ```

use crate::bytecode::{self, Check, Code, Op, MAX_LANES, MAX_RANK};
use crate::exec::{ExecLimits, Executor, RunOutcome, TileStats};
use crate::interp::{binop, ExecError, Observer, RunStats};
use crate::ir::ScalarProgram;
use crate::par::Pool;
use crate::simd;
use crate::verifier::{self, VerifyDiagnostic};
use std::sync::Arc;
use testkit::faults::{self, FaultSite};
use zlang::ast::ReduceOp;
use zlang::ir::{ArrayId, ConfigBinding};

#[derive(Debug, Clone, Copy, Default)]
struct Ctr {
    cur: i64,
    end: i64,
    step: i64,
}

pub(crate) struct VmArray {
    pub(crate) base: u64,
    pub(crate) data: Vec<f64>,
}

/// An immutable, thread-shareable handle to a compiled bytecode program.
///
/// A [`Vm`] holds its compiled tables behind an `Arc`; [`Vm::share`]
/// exposes that handle and [`Vm::from_shared`] builds a fresh executor
/// around it without recompiling. Cloning the handle is one `Arc` bump, so
/// compilation can happen once on one thread while each executor keeps its
/// run state (registers, index vector, array buffers) private. The handle
/// remembers whether [`Vm::verify`] succeeded: executors built from a
/// verified handle start on the unchecked fast path without re-running the
/// verifier, because the proof is about the immutable bytecode, not the VM
/// instance.
#[derive(Clone)]
pub struct SharedProgram {
    code: Arc<Code>,
    binding: ConfigBinding,
    verified: bool,
}

impl std::fmt::Debug for SharedProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedProgram")
            .field("verified", &self.verified)
            .finish_non_exhaustive()
    }
}

impl SharedProgram {
    /// The config binding the program was compiled under.
    pub fn binding(&self) -> &ConfigBinding {
        &self.binding
    }

    /// Whether the bytecode verifier accepted the program before it was
    /// shared.
    pub fn is_verified(&self) -> bool {
        self.verified
    }
}

/// The bytecode virtual machine.
///
/// Construction compiles the program once under the given binding; each
/// [`Vm::run`] (or [`Executor::execute`]) then executes the flat bytecode.
/// The compiled tables are immutable and `Arc`-shared ([`Vm::share`]);
/// [`Vm::set_threads`] additionally enables the parallel tiled fast path
/// ([`Engine::VmPar`](crate::Engine::VmPar)).
pub struct Vm {
    code: Arc<Code>,
    binding: ConfigBinding,
    regs: Vec<f64>,
    idx: [i64; MAX_RANK],
    ctrs: Vec<Ctr>,
    arrays: Vec<Option<VmArray>>,
    stats: RunStats,
    next_base: u64,
    verified: bool,
    limits: ExecLimits,
    par: Option<Pool>,
    tile_log: Vec<TileStats>,
    /// Lane width for `Op::SimdBegin` loops (effective only once verified;
    /// per-loop alias analysis may clamp it further).
    lanes: usize,
    /// Reusable per-lane register file, sized on first vectorized loop.
    simd_scratch: Vec<[f64; MAX_LANES]>,
}

impl Vm {
    /// Compiles a program to bytecode under a config binding.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if the program cannot be lowered (e.g. a
    /// region of rank above the VM's limit).
    pub fn new(prog: &ScalarProgram, binding: ConfigBinding) -> Result<Self, ExecError> {
        let code = Arc::new(bytecode::compile(prog, &binding)?);
        Ok(Vm::from_parts(code, binding, false))
    }

    /// Compiles a program and then runs the superinstruction + SIMD
    /// rewrite (`crate::simd`) over the bytecode: fused element-wise
    /// chains collapse into superinstructions and vectorizable innermost
    /// loops gain `Op::SimdBegin` annotations. The rewritten bytecode runs
    /// on every dispatcher (scalar engines treat the annotations as
    /// no-ops); the lane fast path additionally requires [`Vm::verify`].
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if the program cannot be lowered.
    pub fn new_superfused(prog: &ScalarProgram, binding: ConfigBinding) -> Result<Self, ExecError> {
        let mut code = bytecode::compile(prog, &binding)?;
        simd::superfuse(&mut code);
        Ok(Vm::from_parts(Arc::new(code), binding, false))
    }

    /// Sets the lane width for vectorized innermost loops (`0` restores
    /// the default, other values clamp to `1..=8`; `1` disables the lane
    /// path). Effective only on verified superfused programs — the lane
    /// dispatch reuses the verifier's unchecked-access proof.
    pub fn set_lanes(&mut self, lanes: usize) {
        self.lanes = match lanes {
            0 => simd::DEFAULT_LANES,
            n => n.min(MAX_LANES),
        };
    }

    /// The configured lane width.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Renders the compiled bytecode as human-readable assembly, one op
    /// per line with full operand detail (`zlc --print bytecode`).
    pub fn disasm(&self) -> String {
        bytecode::disasm(&self.code)
    }

    /// Builds a fresh VM around an existing [`SharedProgram`] handle — no
    /// recompilation, no re-verification; run state starts pristine.
    pub fn from_shared(shared: &SharedProgram) -> Self {
        Vm::from_parts(
            Arc::clone(&shared.code),
            shared.binding.clone(),
            shared.verified,
        )
    }

    /// Shares this VM's compiled (and possibly verified) program.
    pub fn share(&self) -> SharedProgram {
        SharedProgram {
            code: Arc::clone(&self.code),
            binding: self.binding.clone(),
            verified: self.verified,
        }
    }

    fn from_parts(code: Arc<Code>, binding: ConfigBinding, verified: bool) -> Self {
        let mut regs = vec![0.0; code.frame as usize];
        for (i, &v) in code.consts.iter().enumerate() {
            regs[code.const_base as usize + i] = v;
        }
        let n_arrays = code.arrays.len();
        let n_ctrs = code.n_ctrs as usize;
        Vm {
            code,
            binding,
            regs,
            idx: [0; MAX_RANK],
            ctrs: vec![Ctr::default(); n_ctrs],
            arrays: (0..n_arrays).map(|_| None).collect(),
            stats: RunStats::default(),
            next_base: 4096,
            verified,
            limits: ExecLimits::none(),
            par: None,
            tile_log: Vec::new(),
            lanes: simd::DEFAULT_LANES,
            simd_scratch: Vec::new(),
        }
    }

    /// Enables parallel tiled execution for subsequent runs: ladders the
    /// compiler marked partitionable (`Op::ParBegin`) fan out as
    /// per-tile tasks on a persistent work-stealing pool of `threads`
    /// threads (including the calling thread; `0` means one per available
    /// core, capped at 8). Fan-out only happens under observers with
    /// [`Observer::wants_addresses`]`() == false`; otherwise the run stays
    /// sequential so the address stream keeps its contracted order.
    /// Results are bit-identical to the sequential run for every thread
    /// count: tiles partition the writes, reductions never tile, and the
    /// per-tile counters merge in deterministic tile order.
    pub fn set_threads(&mut self, threads: usize) {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        } else {
            threads
        };
        self.par = Some(Pool::new(threads));
    }

    /// The configured parallel width: 1 when [`Vm::set_threads`] was never
    /// called.
    pub fn threads(&self) -> usize {
        self.par.as_ref().map_or(1, Pool::threads)
    }

    /// The per-tile counter stream of the most recent run, in
    /// deterministic `(batch, tile)` order. Empty when no ladder fanned
    /// out (sequential runs, active observers, or no partitionable nest).
    pub fn tile_stats(&self) -> &[TileStats] {
        &self.tile_log
    }

    /// Sets the resource budgets for subsequent runs; see [`ExecLimits`].
    /// One unit of fuel is one bytecode instruction. The budget checks run
    /// in a separate monomorphization of the dispatch loop, so unlimited
    /// runs pay nothing for the feature.
    pub fn set_limits(&mut self, limits: ExecLimits) {
        self.limits = limits;
    }

    /// Runs the [bytecode verifier](crate::verifier) over the compiled
    /// program. On success the VM switches to the unchecked fast path:
    /// element loads and stores skip the slice bounds check that the
    /// verifier has statically discharged. Runtime halo checks (the
    /// compiler's `check` entries) still execute — the verifier proves
    /// they dominate the flat index, not that they always pass.
    ///
    /// # Errors
    ///
    /// Returns every diagnostic when verification fails; the VM then stays
    /// on the checked path and remains safe to run.
    pub fn verify(&mut self) -> Result<(), Vec<VerifyDiagnostic>> {
        if faults::fire(FaultSite::VerifyReject) {
            return Err(vec![VerifyDiagnostic {
                pc: None,
                message: faults::message(FaultSite::VerifyReject),
            }]);
        }
        let diags = verifier::verify(&self.code);
        if diags.is_empty() {
            self.verified = true;
            Ok(())
        } else {
            Err(diags)
        }
    }

    /// Whether [`Vm::verify`] has succeeded and the unchecked fast path is
    /// active.
    pub fn is_verified(&self) -> bool {
        self.verified
    }

    /// Executes the bytecode, reporting accesses to `obs`.
    ///
    /// Generic over the observer so that unobserved runs
    /// ([`NoopObserver`](crate::NoopObserver)) monomorphize to no-ops.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on an out-of-region array access.
    pub fn run<O: Observer + ?Sized>(&mut self, obs: &mut O) -> Result<RunOutcome, ExecError> {
        // Clone the `Arc` into a local so op fetch and access resolution
        // do not re-read through `self` (which the stat and register
        // writes below mutate) on every dispatch.
        let code = Arc::clone(&self.code);
        let fueled = !self.limits.is_unlimited();
        match (self.verified, fueled) {
            (true, true) => self.dispatch::<O, true, true>(&code, obs),
            (true, false) => self.dispatch::<O, true, false>(&code, obs),
            (false, true) => self.dispatch::<O, false, true>(&code, obs),
            (false, false) => self.dispatch::<O, false, false>(&code, obs),
        }
    }

    /// The dispatch loop, monomorphized over the observer, over whether
    /// the program passed the bytecode verifier, and over whether resource
    /// budgets are active. `UNCHECKED` may only be true after
    /// [`Vm::verify`] succeeded: it elides the slice bounds check on the
    /// element access itself, which the verifier proved in bounds for
    /// every reachable index vector. `FUELED` charges one fuel unit per
    /// instruction and polls the wall-clock deadline every 8192
    /// instructions; unbudgeted runs take the `FUELED = false`
    /// monomorphization and pay nothing.
    fn dispatch<O: Observer + ?Sized, const UNCHECKED: bool, const FUELED: bool>(
        &mut self,
        code: &Arc<Code>,
        obs: &mut O,
    ) -> Result<RunOutcome, ExecError> {
        // Split `self` into disjoint field borrows and keep the hottest
        // state — the index vector and the access counters — in locals,
        // so the dispatch loop works on registers instead of round-tripping
        // every increment through `&mut self`. The counters are merged back
        // into the cumulative stats at the single exit point below.
        let Vm {
            regs,
            ctrs,
            arrays,
            stats,
            next_base,
            par,
            simd_scratch,
            ..
        } = self;
        let fan_out = par.as_ref().filter(|_| !obs.wants_addresses());
        // Like tile fan-out, the lane path skips per-element observer
        // callbacks, so observers that need the ordered address stream
        // keep the loop scalar.
        let lane_want = if obs.wants_addresses() { 1 } else { self.lanes };
        let limits = self.limits;
        let mut idx = self.idx;
        let mut batch_tiles: Vec<TileStats> = Vec::new();
        let mut next_batch = 0u32;
        let (mut loads, mut stores, mut flops, mut points) = (0u64, 0u64, 0u64, 0u64);
        let mut fuel_left = limits.fuel.unwrap_or(u64::MAX);
        let mut ticks = 0u64;
        let ops = &code.ops[..];
        let mut pc = 0usize;
        // Constituent element load/store of a superinstruction — the exact
        // semantics (and unchecked-path proof) of `Op::Load`/`Op::Store`,
        // shared across the bundle arms below.
        macro_rules! load_elem {
            ($acc:expr, $dst:expr) => {{
                let (ai, flat) = match resolve(code, &idx, $acc) {
                    Ok(v) => v,
                    Err(e) => break Err(e),
                };
                let Some(arr) = arrays[ai].as_ref() else {
                    break Err(unallocated(code, ai));
                };
                obs.load(arr.base + (flat as u64) * 8);
                loads += 1;
                regs[$dst as usize] = if UNCHECKED {
                    debug_assert!(flat < arr.data.len());
                    // SAFETY: as for `Op::Load` — the verifier's bounds
                    // proof covers every constituent access of a bundle.
                    unsafe { *arr.data.get_unchecked(flat) }
                } else {
                    arr.data[flat]
                };
            }};
        }
        macro_rules! store_elem {
            ($acc:expr, $src:expr) => {{
                let v = regs[$src as usize];
                let (ai, flat) = match resolve(code, &idx, $acc) {
                    Ok(v) => v,
                    Err(e) => break Err(e),
                };
                let Some(arr) = arrays[ai].as_mut() else {
                    break Err(unallocated(code, ai));
                };
                if UNCHECKED {
                    debug_assert!(flat < arr.data.len());
                    // SAFETY: as for `Op::Store`.
                    unsafe { *arr.data.get_unchecked_mut(flat) = v };
                } else {
                    arr.data[flat] = v;
                }
                obs.store(arr.base + (flat as u64) * 8);
                stores += 1;
            }};
        }
        let res: Result<(), ExecError> = loop {
            if FUELED {
                if fuel_left == 0 {
                    break Err(ExecError::fuel());
                }
                fuel_left -= 1;
                ticks += 1;
                if ticks & 0x1FFF == 0 {
                    if let Some(d) = limits.deadline {
                        if std::time::Instant::now() >= d {
                            break Err(ExecError::deadline());
                        }
                    }
                }
            }
            let op = ops[pc];
            pc += 1;
            match op {
                Op::Add { dst, a, b } => {
                    regs[dst as usize] = regs[a as usize] + regs[b as usize];
                }
                Op::Sub { dst, a, b } => {
                    regs[dst as usize] = regs[a as usize] - regs[b as usize];
                }
                Op::Mul { dst, a, b } => {
                    regs[dst as usize] = regs[a as usize] * regs[b as usize];
                }
                Op::Div { dst, a, b } => {
                    regs[dst as usize] = regs[a as usize] / regs[b as usize];
                }
                Op::Bin { op, dst, a, b } => {
                    regs[dst as usize] = binop(op, regs[a as usize], regs[b as usize]);
                }
                Op::Neg { dst, src } => {
                    regs[dst as usize] = -regs[src as usize];
                }
                Op::Mov { dst, src } => {
                    regs[dst as usize] = regs[src as usize];
                }
                Op::Call { intr, dst, base, n } => {
                    let base = base as usize;
                    let v = intr.eval(&regs[base..base + n as usize]);
                    regs[dst as usize] = v;
                }
                Op::IdxF { dst, d } => {
                    regs[dst as usize] = idx[d as usize] as f64;
                }
                Op::Load { dst, acc } => {
                    let (ai, flat) = match resolve(code, &idx, acc) {
                        Ok(v) => v,
                        Err(e) => break Err(e),
                    };
                    let Some(arr) = arrays[ai].as_ref() else {
                        break Err(unallocated(code, ai));
                    };
                    obs.load(arr.base + (flat as u64) * 8);
                    loads += 1;
                    regs[dst as usize] = if UNCHECKED {
                        debug_assert!(flat < arr.data.len());
                        // SAFETY: the bytecode verifier proved every
                        // reachable flat index of this access within the
                        // array's allocation (`Vm::verify` gates UNCHECKED).
                        unsafe { *arr.data.get_unchecked(flat) }
                    } else {
                        arr.data[flat]
                    };
                }
                Op::Store { acc, src } => {
                    let v = regs[src as usize];
                    let (ai, flat) = match resolve(code, &idx, acc) {
                        Ok(v) => v,
                        Err(e) => break Err(e),
                    };
                    let Some(arr) = arrays[ai].as_mut() else {
                        break Err(unallocated(code, ai));
                    };
                    if UNCHECKED {
                        debug_assert!(flat < arr.data.len());
                        // SAFETY: as for Load — the verifier's bounds proof
                        // covers every access reachable in verified code.
                        unsafe { *arr.data.get_unchecked_mut(flat) = v };
                    } else {
                        arr.data[flat] = v;
                    }
                    obs.store(arr.base + (flat as u64) * 8);
                    stores += 1;
                }
                Op::Reduce { op, dst, src } => {
                    let a = regs[dst as usize];
                    let v = regs[src as usize];
                    regs[dst as usize] = match op {
                        ReduceOp::Sum => a + v,
                        ReduceOp::Prod => a * v,
                        ReduceOp::Max => a.max(v),
                        ReduceOp::Min => a.min(v),
                    };
                }
                Op::Tick { flops: n } => {
                    points += 1;
                    flops += n as u64;
                    obs.flops(n as u64);
                }
                Op::NestBegin { nest } => {
                    if faults::fire(FaultSite::VmTrap) {
                        break Err(ExecError::trap(faults::message(FaultSite::VmTrap)));
                    }
                    obs.nest_begin(&code.nests[nest as usize]);
                }
                Op::ReduceBegin => {
                    obs.reduce_begin();
                }
                Op::ParBegin { par: pi } => {
                    // Sequential runs (no pool, or an observer that needs
                    // the ordered address stream) fall through into the
                    // ladder; this op is then a no-op.
                    if let Some(pool) = fan_out {
                        let info = code.pars[pi as usize];
                        let mark = batch_tiles.len();
                        let r = crate::par::run_ladder(
                            pool,
                            code,
                            info,
                            regs,
                            &idx,
                            arrays,
                            limits.deadline,
                            next_batch,
                            if UNCHECKED { lane_want } else { 1 },
                            &mut batch_tiles,
                        );
                        next_batch += 1;
                        match r {
                            Ok(final_idx) => idx = final_idx,
                            Err(e) => break Err(e),
                        }
                        if FUELED {
                            // Worker instructions draw from the same fuel
                            // budget as the coordinator's; each tile
                            // reports its op count and the batch total is
                            // deducted here, deterministically.
                            let used: u64 = batch_tiles[mark..].iter().map(|t| t.ops).sum();
                            if used > fuel_left {
                                break Err(ExecError::fuel());
                            }
                            fuel_left -= used;
                        }
                        pc = info.exit as usize;
                    }
                }
                Op::Alloc { arr } => alloc(code, arrays, stats, next_base, arr as usize),
                Op::SetIdx { d, v } => {
                    idx[d as usize] = v;
                }
                Op::IdxStep {
                    d,
                    step,
                    stop,
                    head,
                } => {
                    let v = idx[d as usize] + step;
                    idx[d as usize] = v;
                    if v != stop {
                        pc = head as usize;
                    }
                }
                Op::CtrInit {
                    ctr,
                    cur,
                    end,
                    step,
                } => {
                    ctrs[ctr as usize] = Ctr { cur, end, step };
                }
                Op::CtrToIdx { d, ctr } => {
                    idx[d as usize] = ctrs[ctr as usize].cur;
                }
                Op::CtrToScalar { dst, ctr } => {
                    regs[dst as usize] = ctrs[ctr as usize].cur as f64;
                }
                Op::ForInit {
                    ctr,
                    lo,
                    hi,
                    down,
                    exit,
                } => {
                    let lo_v = regs[lo as usize].round() as i64;
                    let hi_v = regs[hi as usize].round() as i64;
                    let empty = if down { hi_v > lo_v } else { lo_v > hi_v };
                    if empty {
                        pc = exit as usize;
                    } else {
                        let step = if down { -1 } else { 1 };
                        ctrs[ctr as usize] = Ctr {
                            cur: lo_v,
                            end: hi_v,
                            step,
                        };
                    }
                }
                Op::CtrStep { ctr, head } => {
                    let c = &mut ctrs[ctr as usize];
                    c.cur += c.step;
                    let more = if c.step > 0 {
                        c.cur <= c.end
                    } else {
                        c.cur >= c.end
                    };
                    if more {
                        pc = head as usize;
                    }
                }
                Op::Jmp { target } => {
                    pc = target as usize;
                }
                Op::JmpIfZero { cond, target } => {
                    if regs[cond as usize] == 0.0 {
                        pc = target as usize;
                    }
                }
                Op::LdLdBin {
                    op,
                    dst,
                    da,
                    aa,
                    db,
                    ab,
                } => {
                    load_elem!(aa, da);
                    load_elem!(ab, db);
                    regs[dst as usize] = binop(op, regs[da as usize], regs[db as usize]);
                }
                Op::LdBin {
                    op,
                    dst,
                    dl,
                    acc,
                    other,
                    right,
                } => {
                    load_elem!(acc, dl);
                    let (x, y) = if right { (other, dl) } else { (dl, other) };
                    regs[dst as usize] = binop(op, regs[x as usize], regs[y as usize]);
                }
                Op::BinBin {
                    op1,
                    d1,
                    a1,
                    b1,
                    op2,
                    d2,
                    a2,
                    b2,
                } => {
                    regs[d1 as usize] = binop(op1, regs[a1 as usize], regs[b1 as usize]);
                    regs[d2 as usize] = binop(op2, regs[a2 as usize], regs[b2 as usize]);
                }
                Op::BinSt { op, dst, a, b, acc } => {
                    regs[dst as usize] = binop(op, regs[a as usize], regs[b as usize]);
                    store_elem!(acc, dst);
                }
                Op::LdSt { dst, la, sa } => {
                    load_elem!(la, dst);
                    store_elem!(sa, dst);
                }
                Op::SimdBegin { simd } => {
                    // Scalar dispatchers and observed runs fall through
                    // into the loop; the lane fast path requires the
                    // verifier's unchecked-access proof (`UNCHECKED` is
                    // gated on `Vm::verify`), which the lane memory path
                    // reuses for its whole-span bounds reasoning.
                    if UNCHECKED && lane_want >= 2 {
                        let info = &code.simds[simd as usize];
                        let mut mem = simd::VmMem {
                            code: code.as_ref(),
                            arrays: arrays.as_mut_slice(),
                        };
                        let r = simd::run_lanes(
                            code,
                            info,
                            lane_want,
                            info.start,
                            info.stop,
                            regs,
                            &idx,
                            &mut mem,
                            simd_scratch,
                            if FUELED { limits.deadline } else { None },
                        );
                        match r {
                            Err(e) => break Err(e),
                            Ok(run) if run.iters > 0 => {
                                loads += run.loads;
                                stores += run.stores;
                                flops += run.flops;
                                points += run.points;
                                if FUELED {
                                    // Lanes draw scalar-equivalent fuel:
                                    // one unit per body op per covered
                                    // iteration, like the tile pool.
                                    if run.ops > fuel_left {
                                        break Err(ExecError::fuel());
                                    }
                                    fuel_left -= run.ops;
                                }
                                let extent = (info.stop - info.start) / info.step;
                                if run.iters == extent {
                                    idx[info.dim as usize] = info.stop;
                                    pc = info.exit as usize;
                                } else {
                                    // Scalar epilogue: resume the loop at
                                    // its head for the remainder (the
                                    // skipped SetIdx is compensated here).
                                    idx[info.dim as usize] = info.start + run.iters * info.step;
                                    pc = info.head as usize;
                                }
                            }
                            Ok(_) => {} // too few iterations: stay scalar
                        }
                    }
                }
                Op::Halt => break Ok(()),
            }
        };
        self.idx = idx;
        self.stats.loads += loads;
        self.stats.stores += stores;
        self.stats.flops += flops;
        self.stats.points += points;
        // Tile counters fold in through the same deterministic merge the
        // public aggregation API exposes; the cumulative stats then match
        // a sequential run exactly (same points, same u64 sums).
        self.stats = RunOutcome::merge(Vec::new(), self.stats, batch_tiles.iter().copied()).stats;
        self.tile_log = batch_tiles;
        res?;
        Ok(RunOutcome::new(
            self.regs[..code.n_scalars as usize].to_vec(),
            self.stats,
        ))
    }

    /// The contents of an array, if it was allocated during the run.
    pub fn array(&self, id: ArrayId) -> Option<&[f64]> {
        self.arrays[id.0 as usize]
            .as_ref()
            .map(|b| b.data.as_slice())
    }

    /// Run statistics so far.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// The config binding in use.
    pub fn binding(&self) -> &ConfigBinding {
        &self.binding
    }

    /// Number of bytecode operations in the compiled program.
    pub fn code_len(&self) -> usize {
        self.code.ops.len()
    }
}

/// Lazy allocation mirroring the interpreter's `ensure_alloc`: same
/// base staggering, same alignment, same stats accounting — so both
/// engines present identical byte addresses to the cache simulator.
fn alloc(
    code: &Code,
    arrays: &mut [Option<VmArray>],
    stats: &mut RunStats,
    next_base: &mut u64,
    ai: usize,
) {
    if arrays[ai].is_some() {
        return;
    }
    let info = &code.arrays[ai];
    let stagger = ((stats.arrays_allocated as u64 * 7) % 128) * 64;
    let base = ((*next_base + 63) & !63) + stagger;
    *next_base = base + info.bytes;
    arrays[ai] = Some(VmArray {
        base,
        data: vec![0.0; info.elems],
    });
    stats.arrays_allocated += 1;
    stats.peak_bytes += info.bytes;
}

/// Resolves an access-table entry against the current index vector.
/// Shared with the parallel tile executor (`crate::par`), which evaluates
/// the same halo checks against its private index vector.
#[inline]
pub(crate) fn resolve(
    code: &Code,
    idx: &[i64; MAX_RANK],
    acc: u32,
) -> Result<(usize, usize), ExecError> {
    let a = &code.accesses[acc as usize];
    if let Some(chk) = &a.check {
        for &(d, off, lo, ext) in &chk.dims {
            let i = idx[d as usize] + off - lo;
            if i < 0 || i >= ext {
                return Err(oob(code, idx, chk));
            }
        }
    }
    let mut flat = a.const_flat;
    match a.rank {
        0 => {}
        1 => flat += idx[0] * a.strides[0],
        // The common case: every paper benchmark is rank <= 2.
        2 => flat += idx[0] * a.strides[0] + idx[1] * a.strides[1],
        _ => {
            for (i, s) in idx.iter().zip(&a.strides).take(a.rank as usize) {
                flat += i * s;
            }
        }
    }
    Ok((a.arr as usize, flat as usize))
}

#[cold]
fn oob(code: &Code, idx: &[i64; MAX_RANK], chk: &Check) -> ExecError {
    let pt: Vec<i64> = chk
        .off
        .iter()
        .take(MAX_RANK)
        .enumerate()
        .map(|(d, &o)| idx[d] + o)
        .collect();
    ExecError::access(format!(
        "access to `{}` at {:?} is outside its declared region (declare a halo?)",
        code.arrays[chk.arr.0 as usize].name, pt
    ))
}

#[cold]
pub(crate) fn unallocated(code: &Code, ai: usize) -> ExecError {
    ExecError::trap(format!(
        "array `{}` accessed before its Alloc op (malformed bytecode)",
        code.arrays[ai].name
    ))
}

impl Executor for Vm {
    fn execute(&mut self, obs: &mut dyn Observer) -> Result<RunOutcome, ExecError> {
        self.run(obs)
    }

    fn set_limits(&mut self, limits: ExecLimits) {
        Vm::set_limits(self, limits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interp, NoopObserver};
    use crate::ir::{EExpr, ElemRef, ElemStmt, LStmt, LoopNest};
    use zlang::ir::{ConfigBinding, Offset, RegionId, ScalarExpr, ScalarId};

    fn prog() -> zlang::ir::Program {
        zlang::compile(
            "program t; config n : int = 4; region R = [1..n, 1..n]; \
             var A, B : [R] float; var s : float; var k : int; begin end",
        )
        .unwrap()
    }

    fn run_both(sp: &ScalarProgram) -> (RunOutcome, RunOutcome) {
        let b = ConfigBinding::defaults(&sp.program);
        let mut i = Interp::new(sp, b.clone());
        let oi = i.execute(&mut NoopObserver).unwrap();
        let mut v = Vm::new(sp, b).unwrap();
        let ov = v.execute(&mut NoopObserver).unwrap();
        (oi, ov)
    }

    #[test]
    fn vm_matches_interp_on_index_fill() {
        let sp = ScalarProgram {
            program: prog(),
            stmts: vec![LStmt::Nest(LoopNest {
                region: RegionId(0),
                structure: vec![2, -1],
                body: vec![ElemStmt {
                    target: ElemRef::Array(zlang::ir::ArrayId(0), Offset(vec![0, 0])),
                    rhs: EExpr::Binary(
                        zlang::ast::BinOp::Add,
                        Box::new(EExpr::Binary(
                            zlang::ast::BinOp::Mul,
                            Box::new(EExpr::Index(0)),
                            Box::new(EExpr::Const(10.0)),
                        )),
                        Box::new(EExpr::Index(1)),
                    ),
                }],
                cluster: 0,
                temps: 0,
            })],
        };
        let (oi, ov) = run_both(&sp);
        assert_eq!(oi, ov);
    }

    #[test]
    fn vm_matches_interp_on_reduce_and_for() {
        let sp = ScalarProgram {
            program: prog(),
            stmts: vec![
                LStmt::Nest(LoopNest {
                    region: RegionId(0),
                    structure: vec![1, 2],
                    body: vec![ElemStmt {
                        target: ElemRef::Array(zlang::ir::ArrayId(0), Offset(vec![0, 0])),
                        rhs: EExpr::Index(1),
                    }],
                    cluster: 0,
                    temps: 0,
                }),
                LStmt::For {
                    var: ScalarId(1),
                    lo: ScalarExpr::Const(1.0),
                    hi: ScalarExpr::Const(3.0),
                    down: false,
                    body: vec![LStmt::ReduceNest {
                        lhs: ScalarId(0),
                        op: zlang::ast::ReduceOp::Sum,
                        region: RegionId(0),
                        structure: vec![1, 2],
                        rhs: EExpr::Load(zlang::ir::ArrayId(0), Offset(vec![0, 0])),
                    }],
                },
            ],
        };
        let (oi, ov) = run_both(&sp);
        assert_eq!(oi, ov);
        assert_eq!(ov.scalar(ScalarId(0)), 40.0);
    }

    #[test]
    fn verified_vm_matches_checked_vm() {
        let sp = ScalarProgram {
            program: prog(),
            stmts: vec![LStmt::Nest(LoopNest {
                region: RegionId(0),
                structure: vec![2, -1],
                body: vec![ElemStmt {
                    target: ElemRef::Array(zlang::ir::ArrayId(0), Offset(vec![0, 0])),
                    rhs: EExpr::Binary(
                        zlang::ast::BinOp::Add,
                        Box::new(EExpr::Index(0)),
                        Box::new(EExpr::Index(1)),
                    ),
                }],
                cluster: 0,
                temps: 0,
            })],
        };
        let b = ConfigBinding::defaults(&sp.program);
        let mut checked = Vm::new(&sp, b.clone()).unwrap();
        let oc = checked.execute(&mut NoopObserver).unwrap();
        let mut fast = Vm::new(&sp, b).unwrap();
        fast.verify().unwrap();
        assert!(fast.is_verified());
        let of = fast.execute(&mut NoopObserver).unwrap();
        assert_eq!(oc, of);
        assert_eq!(
            checked.array(zlang::ir::ArrayId(0)),
            fast.array(zlang::ir::ArrayId(0))
        );
    }

    #[test]
    fn vm_reports_halo_error_like_interp() {
        let sp = ScalarProgram {
            program: prog(),
            stmts: vec![LStmt::Nest(LoopNest {
                region: RegionId(0),
                structure: vec![1, 2],
                body: vec![ElemStmt {
                    target: ElemRef::Array(zlang::ir::ArrayId(0), Offset(vec![0, 0])),
                    rhs: EExpr::Load(zlang::ir::ArrayId(1), Offset(vec![-1, 0])),
                }],
                cluster: 0,
                temps: 0,
            })],
        };
        let b = ConfigBinding::defaults(&sp.program);
        let ei = Interp::new(&sp, b.clone())
            .execute(&mut NoopObserver)
            .unwrap_err();
        let ev = Vm::new(&sp, b)
            .unwrap()
            .execute(&mut NoopObserver)
            .unwrap_err();
        assert_eq!(ei, ev);
    }

    fn fill_nest() -> ScalarProgram {
        ScalarProgram {
            program: prog(),
            stmts: vec![LStmt::Nest(LoopNest {
                region: RegionId(0),
                structure: vec![2, -1],
                body: vec![ElemStmt {
                    target: ElemRef::Array(zlang::ir::ArrayId(0), Offset(vec![0, 0])),
                    rhs: EExpr::Binary(
                        zlang::ast::BinOp::Add,
                        Box::new(EExpr::Binary(
                            zlang::ast::BinOp::Mul,
                            Box::new(EExpr::Index(0)),
                            Box::new(EExpr::Const(10.0)),
                        )),
                        Box::new(EExpr::Index(1)),
                    ),
                }],
                cluster: 0,
                temps: 0,
            })],
        }
    }

    #[test]
    fn parallel_vm_is_bit_identical_to_sequential_vm() {
        let sp = fill_nest();
        let b = ConfigBinding::defaults(&sp.program);
        let mut seq = Vm::new(&sp, b.clone()).unwrap();
        let os = seq.execute(&mut NoopObserver).unwrap();
        for threads in [1, 2, 3] {
            let mut par = Vm::new(&sp, b.clone()).unwrap();
            par.verify().unwrap();
            par.set_threads(threads);
            assert_eq!(par.threads(), threads);
            let op = par.execute(&mut NoopObserver).unwrap();
            assert_eq!(os, op, "threads={threads}");
            assert_eq!(
                seq.array(zlang::ir::ArrayId(0)),
                par.array(zlang::ir::ArrayId(0))
            );
            assert!(
                !par.tile_stats().is_empty(),
                "the fill nest should fan out (threads={threads})"
            );
            let tiled_points: u64 = par.tile_stats().iter().map(|t| t.points).sum();
            assert_eq!(tiled_points, op.stats.points);
        }
    }

    #[test]
    fn reduction_nests_never_fan_out() {
        let sp = ScalarProgram {
            program: prog(),
            stmts: vec![LStmt::ReduceNest {
                lhs: ScalarId(0),
                op: zlang::ast::ReduceOp::Sum,
                region: RegionId(0),
                structure: vec![1, 2],
                rhs: EExpr::Index(0),
            }],
        };
        let b = ConfigBinding::defaults(&sp.program);
        let mut seq = Vm::new(&sp, b.clone()).unwrap();
        let os = seq.execute(&mut NoopObserver).unwrap();
        let mut par = Vm::new(&sp, b).unwrap();
        par.set_threads(4);
        let op = par.execute(&mut NoopObserver).unwrap();
        assert_eq!(os, op);
        assert!(par.tile_stats().is_empty());
    }

    #[test]
    fn shared_program_runs_without_recompiling() {
        let sp = fill_nest();
        let b = ConfigBinding::defaults(&sp.program);
        let mut first = Vm::new(&sp, b).unwrap();
        first.verify().unwrap();
        let shared = first.share();
        assert!(shared.is_verified());
        let o1 = first.execute(&mut NoopObserver).unwrap();
        let mut second = Vm::from_shared(&shared);
        assert!(second.is_verified());
        second.set_threads(2);
        let o2 = second.execute(&mut NoopObserver).unwrap();
        assert_eq!(o1, o2);
    }

    #[test]
    fn shared_program_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedProgram>();
        assert_send_sync::<Vm>();
    }
}
