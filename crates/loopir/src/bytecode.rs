//! Compilation of [`ScalarProgram`] loop nests to flat register bytecode.
//!
//! The tree-walking [`Interp`](crate::Interp) re-discovers everything on
//! every iteration point: region bounds, array strides, bounds checks,
//! expression structure. Under a fixed [`ConfigBinding`] all of that is
//! static, so this pass resolves it once:
//!
//! * **Frame layout** — one flat `f64` register file holds the program
//!   scalars, the contracted-array temps, interned constants (including
//!   config values and reduction identities), and per-statement scratch.
//! * **Access table** — every array reference becomes a precomputed
//!   `const_flat + Σ idx[d]·stride[d]` entry; dimensions collapsed by
//!   dimension contraction get stride 0. When the enclosing loops' index
//!   ranges prove the access in bounds (the common case), the runtime
//!   check is elided entirely; otherwise a checked entry reproduces the
//!   interpreter's "declare a halo?" error exactly.
//! * **Loop protocol** — region loops become `SetIdx`/`IdxStep` pairs with
//!   absolute jump targets and constant bounds; empty regions are resolved
//!   at compile time. `for`/`outer` loops run on dedicated counters.
//!
//! The [`Vm`](crate::Vm) executes the result with bit-identical observable
//! behavior: same scalar results, same [`RunStats`], and the same ordered
//! load/store address stream through the [`Observer`](crate::Observer).

use crate::interp::ExecError;
use crate::ir::{EExpr, ElemRef, LStmt, LoopNest, ScalarProgram};
use std::collections::{HashMap, HashSet};
use zlang::ast::{BinOp, ReduceOp, UnOp};
use zlang::ir::{ArrayId, ConfigBinding, Intrinsic, Offset, ScalarExpr};

/// Maximum region rank the VM supports (the paper's programs are rank ≤ 3).
pub(crate) const MAX_RANK: usize = 4;

/// A register index into the VM's flat `f64` frame.
pub(crate) type Reg = u16;

/// One bytecode operation. All operands are pre-resolved; the only runtime
/// state is the register frame, the index vector, the loop counters, and
/// the array buffers.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    /// `f[dst] = f[a] + f[b]` (dedicated opcode for the hottest operators
    /// so dispatch needs no second match on the operator; likewise
    /// `Sub`/`Mul`/`Div`).
    Add { dst: Reg, a: Reg, b: Reg },
    /// `f[dst] = f[a] - f[b]`.
    Sub { dst: Reg, a: Reg, b: Reg },
    /// `f[dst] = f[a] * f[b]`.
    Mul { dst: Reg, a: Reg, b: Reg },
    /// `f[dst] = f[a] / f[b]`.
    Div { dst: Reg, a: Reg, b: Reg },
    /// `f[dst] = f[a] <op> f[b]` for the remaining (comparison) operators
    /// (flops are batched into [`Op::Tick`]).
    Bin { op: BinOp, dst: Reg, a: Reg, b: Reg },
    /// `f[dst] = -f[src]`.
    Neg { dst: Reg, src: Reg },
    /// `f[dst] = f[src]`.
    Mov { dst: Reg, src: Reg },
    /// `f[dst] = intr(f[base..base+n])`.
    Call {
        intr: Intrinsic,
        dst: Reg,
        base: Reg,
        n: u8,
    },
    /// `f[dst] = idx[d] as f64`.
    IdxF { dst: Reg, d: u8 },
    /// `f[dst] = array element` through access-table entry `acc`.
    Load { dst: Reg, acc: u32 },
    /// `array element = f[src]` through access-table entry `acc`.
    Store { acc: u32, src: Reg },
    /// `f[dst] = f[dst] <op> f[src]` (reduction combine, no counters).
    Reduce { op: ReduceOp, dst: Reg, src: Reg },
    /// Per-iteration bookkeeping, fused into one dispatch: count one
    /// iteration point and report the body's `flops` (nest bodies are
    /// straight-line, so the flop count per point is a compile-time
    /// constant; observers accumulate totals, so batching per body is
    /// indistinguishable from the interpreter's per-statement reports).
    Tick { flops: u32 },
    /// `Observer::nest_begin` with the nest at index `nest`.
    NestBegin { nest: u32 },
    /// `Observer::reduce_begin`.
    ReduceBegin,
    /// Marks the following loop ladder as tile-partitionable along the
    /// dimension recorded in [`Code::pars`]`[par]`. A plain sequential run
    /// treats this as a no-op and falls through into the ladder; a
    /// parallel-enabled [`Vm`](crate::Vm) may instead fan the ladder out as
    /// per-tile tasks and resume at the ladder's exit pc.
    ParBegin { par: u32 },
    /// Allocate array `arr` if not yet allocated.
    Alloc { arr: u16 },
    /// `idx[d] = v`.
    SetIdx { d: u8, v: i64 },
    /// `idx[d] += step; if idx[d] != stop jump to head` (region loop back
    /// edge; `stop` is one `step` past the last iterate).
    IdxStep {
        d: u8,
        step: i64,
        stop: i64,
        head: u32,
    },
    /// Initialize counter `ctr` (compile-time constant, non-empty) for an
    /// `Outer` loop.
    CtrInit {
        ctr: u16,
        cur: i64,
        end: i64,
        step: i64,
    },
    /// `idx[d] = ctr value` (Outer loop header; also restores the dim at
    /// each inner nest entry).
    CtrToIdx { d: u8, ctr: u16 },
    /// `f[dst] = ctr value as f64` (`for` loop variable binding).
    CtrToScalar { dst: Reg, ctr: u16 },
    /// Evaluate `for` bounds from registers; jump to `exit` when empty,
    /// otherwise initialize counter `ctr`.
    ForInit {
        ctr: u16,
        lo: Reg,
        hi: Reg,
        down: bool,
        exit: u32,
    },
    /// Counter back edge: step `ctr`; jump to `head` while in range.
    CtrStep { ctr: u16, head: u32 },
    /// Unconditional jump.
    Jmp { target: u32 },
    /// Jump to `target` when `f[cond] == 0.0`.
    JmpIfZero { cond: Reg, target: u32 },
    /// Superinstruction: `f[da] = load(aa); f[db] = load(ab);
    /// f[dst] = f[da] <op> f[db]`. All three constituent writes happen in
    /// order, so the bundle is observably identical to the unfused
    /// sequence (same register facts, same load order, same faults).
    LdLdBin {
        op: BinOp,
        dst: Reg,
        da: Reg,
        aa: u32,
        db: Reg,
        ab: u32,
    },
    /// Superinstruction: `f[dl] = load(acc);
    /// f[dst] = right ? f[other] <op> f[dl] : f[dl] <op> f[other]`.
    LdBin {
        op: BinOp,
        dst: Reg,
        dl: Reg,
        acc: u32,
        other: Reg,
        right: bool,
    },
    /// Superinstruction: two consecutive arithmetic ops, executed in
    /// order (`d1` may feed `a2`/`b2`).
    BinBin {
        op1: BinOp,
        d1: Reg,
        a1: Reg,
        b1: Reg,
        op2: BinOp,
        d2: Reg,
        a2: Reg,
        b2: Reg,
    },
    /// Superinstruction: `f[dst] = f[a] <op> f[b]; store(acc, f[dst])`.
    BinSt {
        op: BinOp,
        dst: Reg,
        a: Reg,
        b: Reg,
        acc: u32,
    },
    /// Superinstruction: `f[dst] = load(la); store(sa, f[dst])`.
    LdSt { dst: Reg, la: u32, sa: u32 },
    /// Marks the innermost loop that immediately follows (its `SetIdx` is
    /// at the next pc) as lane-vectorizable per [`Code::simds`]`[simd]`.
    /// A scalar dispatcher treats this as a no-op and falls through into
    /// the loop; a lane-enabled verified [`Vm`](crate::Vm) executes whole
    /// chunks of iterations across unrolled f64 lanes and resumes either
    /// at the loop head (scalar epilogue for the remainder) or at the
    /// loop exit.
    SimdBegin { simd: u32 },
    /// End of program.
    Halt,
}

/// Maximum number of f64 lanes the vectorized innermost-loop dispatch
/// unrolls (one AVX-512-free cache line's worth; the portable kernel and
/// the `std::arch` kernels all operate on blocks of this width).
pub(crate) const MAX_LANES: usize = 8;

/// Operand of a [`LaneOp`]: either a slot in the per-lane register file
/// (a register the loop body writes, so it takes a distinct value per
/// lane) or a scalar frame register that is loop-invariant across the
/// chunk and is broadcast to every lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LaneSrc {
    Lane(u16),
    Scalar(Reg),
}

/// One micro-op of a decoded innermost-loop body. The superfuse pass
/// decodes the (already bundled) body once at compile time, classifying
/// every operand as lane-varying or broadcast, so the runtime lane loop
/// is a straight walk over these with no per-iteration re-analysis.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum LaneOp {
    /// Per lane `m`: `lane[dst][m] = load(acc at idx[d] = base + m·step)`.
    Load { dst: u16, acc: u32 },
    /// Per lane `m`: `store(acc at idx[d] = base + m·step, src[m])`.
    Store { acc: u32, src: LaneSrc },
    /// Per lane `m`: `lane[dst][m] = a[m] <op> b[m]`.
    Bin {
        op: BinOp,
        dst: u16,
        a: LaneSrc,
        b: LaneSrc,
    },
    /// Per lane `m`: `lane[dst][m] = -src[m]`.
    Neg { dst: u16, src: LaneSrc },
    /// Per lane `m`: `lane[dst][m] = src[m]`.
    Mov { dst: u16, src: LaneSrc },
    /// Per lane `m`: `lane[dst][m] = (d == simd dim ? base + m·step :
    /// idx[d]) as f64`.
    IdxF { dst: u16, d: u8 },
    /// Per lane `m`: `lane[dst][m] = intr(args[0][m], args[1][m], ...)`.
    Call {
        intr: Intrinsic,
        dst: u16,
        args: Vec<LaneSrc>,
    },
    /// Count one iteration point and `flops` flops per lane.
    Tick { flops: u32 },
}

/// Compile-time description of one lane-vectorizable innermost loop,
/// referenced by [`Op::SimdBegin`].
///
/// The loop occupying pcs `[head, exit)` (body plus its `IdxStep`; the
/// loop's `SetIdx` sits at `head - 1`) is straight-line, touches only
/// check-free accesses, carries no reduction and no loop-carried register
/// dependence, and the cross-iteration alias analysis proved that no two
/// accesses to a stored array collide within `lanes` consecutive
/// iterations. Executing `lanes` iterations as parallel f64 lanes is
/// therefore observably identical to the scalar order: each lane computes
/// exactly the scalar iteration's values, bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SimdInfo {
    /// The index-vector dimension the loop iterates.
    pub dim: u8,
    /// Maximum safe lane count proven by the alias analysis (2..=8).
    pub lanes: u8,
    /// First iterate of `dim`.
    pub start: i64,
    /// Iteration direction: `+1` or `-1`.
    pub step: i64,
    /// One `step` past the last iterate.
    pub stop: i64,
    /// pc of the first body op (the op after the loop's `SetIdx`).
    pub head: u32,
    /// pc one past the loop's `IdxStep`.
    pub exit: u32,
    /// The decoded lane program (the loop body as lane micro-ops).
    pub body: Vec<LaneOp>,
    /// Original frame register backing each lane slot; after the last
    /// chunk, slot `s`'s last-lane value is written back to
    /// `lane_regs[s]` so the epilogue and post-loop code see exactly the
    /// registers a scalar run would have left.
    pub lane_regs: Vec<Reg>,
}

/// Static per-array allocation info (bounds resolved under the binding).
#[derive(Debug, Clone)]
pub(crate) struct ArrayInfo {
    /// Declared name, for error messages.
    pub name: String,
    /// Allocated element count.
    pub elems: usize,
    /// Allocated bytes (`elems * 8`).
    pub bytes: u64,
}

/// A runtime bounds check: per non-collapsed dimension,
/// `(dim, offset, lo, extent)` — the access is legal iff
/// `0 <= idx[dim] + offset - lo < extent` for all entries.
#[derive(Debug, Clone)]
pub(crate) struct Check {
    pub dims: Vec<(u8, i64, i64, i64)>,
    /// The full offset vector, for the error message.
    pub off: Vec<i64>,
    pub arr: ArrayId,
}

/// Compile-time description of one tile-partitionable loop ladder,
/// referenced by [`Op::ParBegin`].
///
/// The ladder occupying pcs `[entry, exit)` iterates a fused cluster whose
/// iteration points are independent along `dim`: the compiler proved that
/// every array written inside the ladder varies along `dim` (nonzero
/// stride) and is only accessed at a single constant offset along `dim`,
/// that the body carries no reduction, and that every loop-local temp is
/// written before it is read. Splitting the range of `dim` into contiguous
/// tiles therefore partitions the writes, and executing the tiles in any
/// interleaving is observably identical to the sequential run (the
/// per-element result of each point does not depend on any other tile).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ParInfo {
    /// The index-vector dimension whose range may be partitioned.
    pub dim: u8,
    /// First iterate of `dim` in execution order.
    pub start: i64,
    /// Iteration direction: `+1` or `-1`.
    pub step: i64,
    /// Total number of iterates along `dim` (static, ≥ 2).
    pub extent: i64,
    /// pc of the ladder's first op (the outermost `SetIdx`).
    pub entry: u32,
    /// pc one past the ladder's outermost `IdxStep`.
    pub exit: u32,
}

/// One resolved array access site.
#[derive(Debug, Clone)]
pub(crate) struct Access {
    /// Index into [`Code::arrays`].
    pub arr: u16,
    /// Flat-index contribution of the offset and region lows.
    pub const_flat: i64,
    /// Row-major strides per dimension (0 for collapsed dimensions).
    pub strides: [i64; MAX_RANK],
    /// Number of leading `strides` entries in use (the array's rank).
    pub rank: u8,
    /// Runtime bounds check, when static analysis could not elide it.
    pub check: Option<Box<Check>>,
}

/// A compiled program: flat bytecode plus its constant tables.
///
/// Immutable once built; the [`Vm`](crate::Vm) holds it behind an `Arc` so
/// runs (and parallel tile tasks) share one copy across threads.
#[derive(Default)]
pub(crate) struct Code {
    pub ops: Vec<Op>,
    pub accesses: Vec<Access>,
    pub arrays: Vec<ArrayInfo>,
    /// Nests referenced by `Op::NestBegin`, cloned for observer callbacks.
    pub nests: Vec<LoopNest>,
    /// Ladders referenced by `Op::ParBegin`.
    pub pars: Vec<ParInfo>,
    /// Vectorizable innermost loops referenced by `Op::SimdBegin`
    /// (populated by [`crate::simd::superfuse`]; empty for plain
    /// compiles).
    pub simds: Vec<SimdInfo>,
    /// Initial values for the interned-constant registers.
    pub consts: Vec<f64>,
    pub n_scalars: u16,
    pub const_base: u16,
    /// Total registers in the frame.
    pub frame: u16,
    pub n_ctrs: u16,
}

fn err(message: impl Into<String>) -> ExecError {
    ExecError::lower(message)
}

/// Selects the dedicated opcode for arithmetic operators, falling back to
/// the generic [`Op::Bin`] for comparisons.
fn bin_op(op: BinOp, dst: Reg, a: Reg, b: Reg) -> Op {
    match op {
        BinOp::Add => Op::Add { dst, a, b },
        BinOp::Sub => Op::Sub { dst, a, b },
        BinOp::Mul => Op::Mul { dst, a, b },
        BinOp::Div => Op::Div { dst, a, b },
        _ => Op::Bin { op, dst, a, b },
    }
}

fn reduce_identity(op: ReduceOp) -> f64 {
    match op {
        ReduceOp::Sum => 0.0,
        ReduceOp::Prod => 1.0,
        ReduceOp::Max => f64::NEG_INFINITY,
        ReduceOp::Min => f64::INFINITY,
    }
}

/// Per-array static layout used while compiling accesses (not needed at
/// runtime, where `Access` carries everything).
struct Layout {
    lo: Vec<i64>,
    extent: Vec<i64>,
    strides: Vec<i64>,
    collapsed: Vec<bool>,
}

struct Compiler<'p> {
    prog: &'p ScalarProgram,
    binding: &'p ConfigBinding,
    ops: Vec<Op>,
    accesses: Vec<Access>,
    arrays: Vec<ArrayInfo>,
    layouts: Vec<Layout>,
    nests: Vec<LoopNest>,
    pars: Vec<ParInfo>,
    consts: Vec<f64>,
    const_regs: HashMap<u64, Reg>,
    n_scalars: u16,
    temp_base: u16,
    const_base: u16,
    scratch_base: u16,
    /// Next free scratch register (bump-allocated, reset per statement).
    scratch: u32,
    max_scratch: u32,
    n_ctrs: u16,
    /// Compile-time value range of each index-vector slot, if initialized.
    dim_range: [Option<(i64, i64)>; MAX_RANK],
    /// Enclosing `Outer` loops: `(dim, counter, range)`.
    outer_dims: Vec<(u8, u16, (i64, i64))>,
    /// Flops in the statement currently being compiled.
    stmt_flops: u64,
}

/// Compiles a scalarized program to bytecode under a config binding.
pub(crate) fn compile(prog: &ScalarProgram, binding: &ConfigBinding) -> Result<Code, ExecError> {
    let n_scalars = prog.program.scalars.len();
    if n_scalars > u16::MAX as usize {
        return Err(err("too many scalars for the VM frame"));
    }
    let mut max_temps = 0u32;
    max_temps_in(&prog.stmts, &mut max_temps);

    let mut c = Compiler {
        prog,
        binding,
        ops: Vec::new(),
        accesses: Vec::new(),
        arrays: Vec::new(),
        layouts: Vec::new(),
        nests: Vec::new(),
        pars: Vec::new(),
        consts: Vec::new(),
        const_regs: HashMap::new(),
        n_scalars: n_scalars as u16,
        temp_base: n_scalars as u16,
        const_base: 0,
        scratch_base: 0,
        scratch: 0,
        max_scratch: 0,
        n_ctrs: 0,
        dim_range: [None; MAX_RANK],
        outer_dims: Vec::new(),
        stmt_flops: 0,
    };
    c.build_layouts()?;
    // Interned constants must be placed before compilation starts so their
    // registers sit below the scratch area: collect them in a pre-pass.
    c.collect_consts(&prog.stmts);
    let const_base = c.temp_base as u32 + max_temps;
    let scratch_base = const_base + c.consts.len() as u32;
    if scratch_base > u16::MAX as u32 {
        return Err(err("register frame overflow"));
    }
    c.const_base = const_base as u16;
    c.scratch_base = scratch_base as u16;

    c.compile_stmts(&prog.stmts)?;
    c.emit(Op::Halt);

    let frame = scratch_base + c.max_scratch;
    if frame > u16::MAX as u32 {
        return Err(err("register frame overflow"));
    }
    Ok(Code {
        ops: c.ops,
        accesses: c.accesses,
        arrays: c.arrays,
        nests: c.nests,
        pars: c.pars,
        simds: Vec::new(),
        consts: c.consts,
        n_scalars: c.n_scalars,
        const_base: c.const_base,
        frame: frame as u16,
        n_ctrs: c.n_ctrs,
    })
}

fn max_temps_in(stmts: &[LStmt], max: &mut u32) {
    for s in stmts {
        match s {
            LStmt::Nest(n) => *max = (*max).max(n.temps),
            LStmt::For { body, .. } | LStmt::Outer { body, .. } => max_temps_in(body, max),
            LStmt::If {
                then_body,
                else_body,
                ..
            } => {
                max_temps_in(then_body, max);
                max_temps_in(else_body, max);
            }
            LStmt::Scalar { .. } | LStmt::ReduceNest { .. } => {}
        }
    }
}

/// Visits every loop-local temp read by `e`.
fn temp_reads(e: &EExpr, f: &mut impl FnMut(u32)) {
    match e {
        EExpr::Temp(t) => f(t.0),
        EExpr::Unary(_, inner) => temp_reads(inner, f),
        EExpr::Binary(_, l, r) => {
            temp_reads(l, f);
            temp_reads(r, f);
        }
        EExpr::Call(_, args) => {
            for a in args {
                temp_reads(a, f);
            }
        }
        EExpr::Load(..)
        | EExpr::ScalarRef(_)
        | EExpr::ConfigRef(_)
        | EExpr::Const(_)
        | EExpr::Index(_) => {}
    }
}

impl<'p> Compiler<'p> {
    fn emit(&mut self, op: Op) -> u32 {
        self.ops.push(op);
        (self.ops.len() - 1) as u32
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    /// The run-time value of a config variable (mirrors the interpreter:
    /// integer configs come from the binding, float configs are constants).
    fn config_value(&self, c: zlang::ir::ConfigId) -> f64 {
        let d = &self.prog.program.configs[c.0 as usize];
        if d.ty == zlang::ast::Type::Int {
            self.binding.get(c) as f64
        } else {
            d.default
        }
    }

    fn region_bounds(&self, r: zlang::ir::RegionId) -> Vec<(i64, i64)> {
        self.prog.program.region(r).bounds(self.binding)
    }

    // ---- frame layout -----------------------------------------------------

    /// Resolves every array's allocation layout (mirroring the
    /// interpreter's `ensure_alloc` exactly, including collapsed dims).
    fn build_layouts(&mut self) -> Result<(), ExecError> {
        for (i, decl) in self.prog.program.arrays.iter().enumerate() {
            if i > u16::MAX as usize {
                return Err(err("too many arrays for the VM"));
            }
            let bounds = self.region_bounds(decl.region);
            if bounds.len() > MAX_RANK {
                return Err(err(format!(
                    "array `{}` has rank {} > {MAX_RANK} (unsupported by the VM)",
                    decl.name,
                    bounds.len()
                )));
            }
            let mut lo = Vec::with_capacity(bounds.len());
            let mut extent = Vec::with_capacity(bounds.len());
            let mut collapsed = Vec::with_capacity(bounds.len());
            let mut n: i64 = 1;
            for (d, &(l, h)) in bounds.iter().enumerate() {
                let e = (h - l + 1).max(0);
                let is_collapsed = decl.collapsed.contains(&(d as u8));
                lo.push(l);
                extent.push(if is_collapsed { e.min(1) } else { e });
                collapsed.push(is_collapsed);
                if !is_collapsed {
                    n = n.saturating_mul(e);
                }
            }
            // Row-major strides over the non-collapsed extents; collapsed
            // dimensions contribute stride 0 so their index is ignored.
            let mut strides = vec![0i64; bounds.len()];
            let mut running = 1i64;
            for d in (0..bounds.len()).rev() {
                if !collapsed[d] {
                    strides[d] = running;
                    running = running.saturating_mul(extent[d]);
                }
            }
            self.arrays.push(ArrayInfo {
                name: decl.name.clone(),
                elems: n as usize,
                bytes: (n as u64) * 8,
            });
            self.layouts.push(Layout {
                lo,
                extent,
                strides,
                collapsed,
            });
        }
        Ok(())
    }

    // ---- constant interning ----------------------------------------------

    fn intern(&mut self, v: f64) {
        if !self.const_regs.contains_key(&v.to_bits()) {
            let next = self.consts.len() as Reg;
            self.consts.push(v);
            self.const_regs.insert(v.to_bits(), next);
        }
    }

    fn const_reg(&self, v: f64) -> Reg {
        self.const_base + self.const_regs[&v.to_bits()]
    }

    fn collect_consts(&mut self, stmts: &[LStmt]) {
        for s in stmts {
            match s {
                LStmt::Nest(n) => {
                    for st in &n.body {
                        self.collect_econsts(&st.rhs);
                    }
                }
                LStmt::Scalar { rhs, .. } => self.collect_sconsts(rhs),
                LStmt::ReduceNest { op, rhs, .. } => {
                    self.intern(reduce_identity(*op));
                    self.collect_econsts(rhs);
                }
                LStmt::Outer { body, .. } => self.collect_consts(body),
                LStmt::For { lo, hi, body, .. } => {
                    self.collect_sconsts(lo);
                    self.collect_sconsts(hi);
                    self.collect_consts(body);
                }
                LStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    self.collect_sconsts(cond);
                    self.collect_consts(then_body);
                    self.collect_consts(else_body);
                }
            }
        }
    }

    fn collect_econsts(&mut self, e: &EExpr) {
        match e {
            EExpr::Const(v) => self.intern(*v),
            EExpr::ConfigRef(c) => self.intern(self.config_value(*c)),
            EExpr::Unary(_, inner) => self.collect_econsts(inner),
            EExpr::Binary(_, l, r) => {
                self.collect_econsts(l);
                self.collect_econsts(r);
            }
            EExpr::Call(_, args) => {
                for a in args {
                    self.collect_econsts(a);
                }
            }
            EExpr::Load(..) | EExpr::Temp(_) | EExpr::ScalarRef(_) | EExpr::Index(_) => {}
        }
    }

    fn collect_sconsts(&mut self, e: &ScalarExpr) {
        match e {
            ScalarExpr::Const(v) => self.intern(*v),
            ScalarExpr::ConfigRef(c) => self.intern(self.config_value(*c)),
            ScalarExpr::Unary(_, inner) => self.collect_sconsts(inner),
            ScalarExpr::Binary(_, l, r) => {
                self.collect_sconsts(l);
                self.collect_sconsts(r);
            }
            ScalarExpr::Call(_, args) => {
                for a in args {
                    self.collect_sconsts(a);
                }
            }
            ScalarExpr::ScalarRef(_) => {}
        }
    }

    // ---- scratch allocation ----------------------------------------------

    fn alloc_scratch(&mut self) -> Result<Reg, ExecError> {
        let r = self.scratch_base as u32 + self.scratch;
        self.scratch += 1;
        self.max_scratch = self.max_scratch.max(self.scratch);
        if r > u16::MAX as u32 {
            return Err(err("register frame overflow"));
        }
        Ok(r as Reg)
    }

    // ---- accesses ---------------------------------------------------------

    /// Resolves an array access site: flat-index affine form plus a bounds
    /// check unless the current loop ranges prove it in bounds.
    fn make_access(&mut self, a: ArrayId, off: &Offset) -> Result<u32, ExecError> {
        let lay = &self.layouts[a.0 as usize];
        let rank = lay.lo.len();
        if off.0.len() < rank {
            return Err(err(format!(
                "offset rank mismatch on array `{}`",
                self.arrays[a.0 as usize].name
            )));
        }
        let mut const_flat = 0i64;
        let mut strides = [0i64; MAX_RANK];
        let mut need_check = false;
        let mut check_dims = Vec::new();
        // Indexing several parallel per-dimension tables; an iterator chain
        // over one of them would only obscure that.
        #[allow(clippy::needless_range_loop)]
        for d in 0..rank {
            if lay.collapsed[d] {
                continue;
            }
            const_flat += lay.strides[d] * (off.0[d] - lay.lo[d]);
            strides[d] = lay.strides[d];
            let Some((mn, mx)) = self.dim_range[d] else {
                return Err(err(format!(
                    "array `{}` has rank {} but the enclosing nest binds fewer dimensions",
                    self.arrays[a.0 as usize].name, rank
                )));
            };
            let lo_i = mn + off.0[d] - lay.lo[d];
            let hi_i = mx + off.0[d] - lay.lo[d];
            if lo_i < 0 || hi_i >= lay.extent[d] {
                need_check = true;
            }
            check_dims.push((d as u8, off.0[d], lay.lo[d], lay.extent[d]));
        }
        let check = need_check.then(|| {
            Box::new(Check {
                dims: check_dims,
                off: off.0.clone(),
                arr: a,
            })
        });
        let id = self.accesses.len() as u32;
        self.accesses.push(Access {
            arr: a.0 as u16,
            const_flat,
            strides,
            rank: rank as u8,
            check,
        });
        Ok(id)
    }

    // ---- element expressions ----------------------------------------------

    /// Returns a register holding the expression's value, using an existing
    /// register when the expression is a direct reference.
    fn operand(&mut self, e: &EExpr) -> Result<Reg, ExecError> {
        match e {
            EExpr::ScalarRef(s) => Ok(s.0 as Reg),
            EExpr::Temp(t) => Ok(self.temp_base + t.0 as Reg),
            EExpr::Const(v) => Ok(self.const_reg(*v)),
            EExpr::ConfigRef(c) => Ok(self.const_reg(self.config_value(*c))),
            _ => {
                let r = self.alloc_scratch()?;
                self.compile_expr_into(e, r)?;
                Ok(r)
            }
        }
    }

    fn compile_expr_into(&mut self, e: &EExpr, dst: Reg) -> Result<(), ExecError> {
        match e {
            EExpr::Load(a, off) => {
                let acc = self.make_access(*a, off)?;
                self.emit(Op::Load { dst, acc });
            }
            EExpr::Temp(t) => {
                self.emit(Op::Mov {
                    dst,
                    src: self.temp_base + t.0 as Reg,
                });
            }
            EExpr::ScalarRef(s) => {
                self.emit(Op::Mov {
                    dst,
                    src: s.0 as Reg,
                });
            }
            EExpr::ConfigRef(c) => {
                let src = self.const_reg(self.config_value(*c));
                self.emit(Op::Mov { dst, src });
            }
            EExpr::Const(v) => {
                let src = self.const_reg(*v);
                self.emit(Op::Mov { dst, src });
            }
            EExpr::Index(d) => {
                self.emit(Op::IdxF { dst, d: *d });
            }
            EExpr::Unary(UnOp::Neg, inner) => {
                let src = self.operand(inner)?;
                self.emit(Op::Neg { dst, src });
                self.stmt_flops += 1;
            }
            EExpr::Binary(op, l, r) => {
                let a = self.operand(l)?;
                let b = self.operand(r)?;
                self.emit(bin_op(*op, dst, a, b));
                self.stmt_flops += 1;
            }
            EExpr::Call(i, args) => {
                // Arguments live in consecutive scratch registers; reserve
                // the block first so nested evaluation does not interleave.
                let base = self.alloc_scratch()?;
                for _ in 1..args.len() {
                    self.alloc_scratch()?;
                }
                for (k, a) in args.iter().enumerate() {
                    self.compile_expr_into(a, base + k as Reg)?;
                }
                self.emit(Op::Call {
                    intr: *i,
                    dst,
                    base,
                    n: args.len() as u8,
                });
                self.stmt_flops += 1;
            }
        }
        Ok(())
    }

    // ---- scalar expressions -----------------------------------------------

    fn soperand(&mut self, e: &ScalarExpr) -> Result<Reg, ExecError> {
        match e {
            ScalarExpr::ScalarRef(s) => Ok(s.0 as Reg),
            ScalarExpr::Const(v) => Ok(self.const_reg(*v)),
            ScalarExpr::ConfigRef(c) => Ok(self.const_reg(self.config_value(*c))),
            _ => {
                let r = self.alloc_scratch()?;
                self.compile_sexpr_into(e, r)?;
                Ok(r)
            }
        }
    }

    /// Scalar expressions count no flops (mirroring the interpreter, where
    /// scalar control-flow arithmetic is free).
    fn compile_sexpr_into(&mut self, e: &ScalarExpr, dst: Reg) -> Result<(), ExecError> {
        match e {
            ScalarExpr::Const(v) => {
                let src = self.const_reg(*v);
                self.emit(Op::Mov { dst, src });
            }
            ScalarExpr::ScalarRef(s) => {
                self.emit(Op::Mov {
                    dst,
                    src: s.0 as Reg,
                });
            }
            ScalarExpr::ConfigRef(c) => {
                let src = self.const_reg(self.config_value(*c));
                self.emit(Op::Mov { dst, src });
            }
            ScalarExpr::Unary(UnOp::Neg, inner) => {
                let src = self.soperand(inner)?;
                self.emit(Op::Neg { dst, src });
            }
            ScalarExpr::Binary(op, l, r) => {
                let a = self.soperand(l)?;
                let b = self.soperand(r)?;
                self.emit(bin_op(*op, dst, a, b));
            }
            ScalarExpr::Call(i, args) => {
                let base = self.alloc_scratch()?;
                for _ in 1..args.len() {
                    self.alloc_scratch()?;
                }
                for (k, a) in args.iter().enumerate() {
                    self.compile_sexpr_into(a, base + k as Reg)?;
                }
                self.emit(Op::Call {
                    intr: *i,
                    dst,
                    base,
                    n: args.len() as u8,
                });
            }
        }
        Ok(())
    }

    // ---- statements -------------------------------------------------------

    fn compile_stmts(&mut self, stmts: &[LStmt]) -> Result<(), ExecError> {
        for s in stmts {
            match s {
                LStmt::Nest(n) => self.compile_nest(n)?,
                LStmt::Scalar { lhs, rhs } => {
                    let cp = self.scratch;
                    self.compile_sexpr_into(rhs, lhs.0 as Reg)?;
                    self.scratch = cp;
                }
                LStmt::ReduceNest {
                    lhs,
                    op,
                    region,
                    structure: _,
                    rhs,
                } => {
                    self.compile_reduce(lhs.0 as Reg, *op, *region, rhs)?;
                }
                LStmt::Outer {
                    region,
                    dim,
                    reverse,
                    body,
                } => {
                    self.compile_outer(*region, *dim, *reverse, body)?;
                }
                LStmt::For {
                    var,
                    lo,
                    hi,
                    down,
                    body,
                } => {
                    self.compile_for(var.0 as Reg, lo, hi, *down, body)?;
                }
                LStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let cp = self.scratch;
                    let c = self.soperand(cond)?;
                    self.scratch = cp;
                    let jz = self.emit(Op::JmpIfZero { cond: c, target: 0 });
                    self.compile_stmts(then_body)?;
                    if else_body.is_empty() {
                        let end = self.here();
                        self.patch_jump(jz, end);
                    } else {
                        let jend = self.emit(Op::Jmp { target: 0 });
                        let else_at = self.here();
                        self.patch_jump(jz, else_at);
                        self.compile_stmts(else_body)?;
                        let end = self.here();
                        self.patch_jump(jend, end);
                    }
                }
            }
        }
        Ok(())
    }

    fn patch_jump(&mut self, at: u32, to: u32) {
        match &mut self.ops[at as usize] {
            Op::Jmp { target } | Op::JmpIfZero { target, .. } => *target = to,
            Op::ForInit { exit, .. } => *exit = to,
            _ => unreachable!("patching a non-jump"),
        }
    }

    fn alloc_ctr(&mut self) -> Result<u16, ExecError> {
        let c = self.n_ctrs;
        self.n_ctrs = self
            .n_ctrs
            .checked_add(1)
            .ok_or_else(|| err("too many loops"))?;
        Ok(c)
    }

    /// Emits dedup'd `Alloc` ops for every array a nest touches, in the
    /// interpreter's order: loads first, then stores, first occurrence wins.
    fn emit_allocs(&mut self, touched: impl Iterator<Item = ArrayId>) {
        let mut seen = HashSet::new();
        for a in touched {
            if seen.insert(a) {
                self.emit(Op::Alloc { arr: a.0 as u16 });
            }
        }
    }

    /// Emits a static counted-loop ladder over `order` (outermost first),
    /// with `body` compiled at the innermost level. Records each
    /// dimension's value range for bounds-check elision.
    fn emit_static_loops(
        &mut self,
        order: &[(usize, bool, i64, i64)],
        body: &mut dyn FnMut(&mut Self) -> Result<(), ExecError>,
    ) -> Result<(), ExecError> {
        match order.first() {
            None => body(self),
            Some(&(d, up, lo, hi)) => {
                self.dim_range[d] = Some((lo, hi));
                let (start, step, last) = if up { (lo, 1, hi) } else { (hi, -1, lo) };
                self.emit(Op::SetIdx {
                    d: d as u8,
                    v: start,
                });
                let head = self.here();
                self.emit_static_loops(&order[1..], body)?;
                self.emit(Op::IdxStep {
                    d: d as u8,
                    step,
                    stop: last + step,
                    head,
                });
                Ok(())
            }
        }
    }

    fn compile_nest(&mut self, nest: &LoopNest) -> Result<(), ExecError> {
        self.emit_allocs(
            nest.loads()
                .into_iter()
                .map(|(a, _)| a)
                .chain(nest.stores().into_iter().map(|(a, _)| a)),
        );
        let nid = self.nests.len() as u32;
        self.nests.push(nest.clone());
        self.emit(Op::NestBegin { nest: nid });

        let bounds = self.region_bounds(nest.region);
        let full_rank = bounds.len();
        if full_rank > MAX_RANK {
            return Err(err(format!(
                "region rank {full_rank} > {MAX_RANK} (unsupported by the VM)"
            )));
        }
        let order: Vec<(usize, bool, i64, i64)> = nest
            .structure
            .iter()
            .map(|&p| {
                let dim = (p.unsigned_abs() as usize) - 1;
                let (lo, hi) = bounds[dim];
                (dim, p > 0, lo, hi)
            })
            .collect();
        if order.iter().any(|&(_, _, lo, hi)| hi < lo) {
            return Ok(()); // empty region: the nest body never runs
        }

        let saved = self.dim_range;
        // Dimensions the structure does not iterate: bound by an enclosing
        // Outer loop, or pinned to 0 (the interpreter's fresh-index rule).
        let structured: HashSet<usize> = order.iter().map(|&(d, _, _, _)| d).collect();
        for d in 0..full_rank {
            if structured.contains(&d) {
                continue;
            }
            if let Some(&(od, ctr, range)) = self
                .outer_dims
                .iter()
                .rev()
                .find(|&&(od, _, _)| od as usize == d)
            {
                self.emit(Op::CtrToIdx { d: od, ctr });
                self.dim_range[d] = Some(range);
            } else {
                self.emit(Op::SetIdx { d: d as u8, v: 0 });
                self.dim_range[d] = Some((0, 0));
            }
        }

        let par = self.par_dim(nest, &order).map(|info| {
            let id = self.pars.len() as u32;
            self.pars.push(info);
            self.emit(Op::ParBegin { par: id });
            self.pars[id as usize].entry = self.here();
            id
        });
        self.emit_static_loops(&order, &mut |c| c.compile_nest_body(nest))?;
        if let Some(id) = par {
            self.pars[id as usize].exit = self.here();
        }
        self.dim_range = saved;
        Ok(())
    }

    /// Decides whether `nest`'s ladder may be tile-partitioned, and along
    /// which dimension. Returns the outermost structured dimension `d`
    /// (extent ≥ 2) such that splitting `d`'s range keeps every tile's
    /// reads and writes confined to its own slice of every written array:
    ///
    /// * every array the nest writes has a nonzero layout stride along `d`
    ///   (a collapsed or absent dimension would alias every tile onto the
    ///   same elements), and
    /// * all accesses to a written array agree on a single constant offset
    ///   along `d` (offsets along *other* dimensions are free — a column
    ///   stencil still row-parallelizes).
    ///
    /// Independently of the dimension, the body must carry no reduction
    /// (reductions stay sequential so the fold order — and therefore the
    /// IEEE-754 result bits — matches the interpreter exactly), and every
    /// loop-local temp must be written before it is read so no point
    /// depends on another tile's temp value. Note that clusters fused under
    /// the paper's null-distance contraction test satisfy all of this
    /// automatically; the re-check keeps hand-built nests honest.
    fn par_dim(&self, nest: &LoopNest, order: &[(usize, bool, i64, i64)]) -> Option<ParInfo> {
        let mut defined: HashSet<u32> = HashSet::new();
        for s in &nest.body {
            let mut stale = false;
            temp_reads(&s.rhs, &mut |t| stale |= !defined.contains(&t));
            if stale {
                return None;
            }
            match &s.target {
                ElemRef::Reduce(..) => return None,
                ElemRef::Temp(t) => {
                    defined.insert(t.0);
                }
                ElemRef::Array(..) => {}
            }
        }
        let stores = nest.stores();
        let loads = nest.loads();
        let written: HashSet<ArrayId> = stores.iter().map(|&(a, _)| a).collect();
        'dims: for &(d, up, lo, hi) in order {
            let extent = hi - lo + 1;
            if extent < 2 {
                continue;
            }
            for &a in &written {
                let lay = &self.layouts[a.0 as usize];
                if lay.strides.get(d).copied().unwrap_or(0) == 0 {
                    continue 'dims;
                }
                let mut offs = stores
                    .iter()
                    .chain(loads.iter())
                    .filter(|&&(b, _)| b == a)
                    .map(|(_, off)| off.0.get(d).copied().unwrap_or(0));
                let first = offs.next().expect("written array has a store");
                if offs.any(|o| o != first) {
                    continue 'dims;
                }
            }
            return Some(ParInfo {
                dim: d as u8,
                start: if up { lo } else { hi },
                step: if up { 1 } else { -1 },
                extent,
                entry: 0,
                exit: 0,
            });
        }
        None
    }

    fn compile_nest_body(&mut self, nest: &LoopNest) -> Result<(), ExecError> {
        let mut body_flops: u64 = 0;
        for stmt in &nest.body {
            let cp = self.scratch;
            self.stmt_flops = 0;
            match &stmt.target {
                ElemRef::Array(a, off) => {
                    let v = self.operand(&stmt.rhs)?;
                    let acc = self.make_access(*a, off)?;
                    self.emit(Op::Store { acc, src: v });
                }
                ElemRef::Temp(t) => {
                    let dst = self.temp_base + t.0 as Reg;
                    self.compile_expr_into(&stmt.rhs, dst)?;
                }
                ElemRef::Reduce(s, op) => {
                    let v = self.operand(&stmt.rhs)?;
                    self.emit(Op::Reduce {
                        op: *op,
                        dst: s.0 as Reg,
                        src: v,
                    });
                    self.stmt_flops += 1;
                }
            }
            body_flops += self.stmt_flops;
            self.scratch = cp;
        }
        self.emit(Op::Tick {
            flops: body_flops.min(u32::MAX as u64) as u32,
        });
        Ok(())
    }

    fn compile_reduce(
        &mut self,
        lhs: Reg,
        op: ReduceOp,
        region: zlang::ir::RegionId,
        rhs: &EExpr,
    ) -> Result<(), ExecError> {
        let mut reads = Vec::new();
        rhs.for_each_load(&mut |a, _| reads.push(a));
        self.emit_allocs(reads.into_iter());
        self.emit(Op::ReduceBegin);

        let bounds = self.region_bounds(region);
        if bounds.len() > MAX_RANK {
            return Err(err(format!(
                "region rank {} > {MAX_RANK} (unsupported by the VM)",
                bounds.len()
            )));
        }
        let cp = self.scratch;
        let acc = self.alloc_scratch()?;
        self.emit(Op::Mov {
            dst: acc,
            src: self.const_reg(reduce_identity(op)),
        });
        if bounds.iter().all(|&(lo, hi)| hi >= lo) {
            // Standalone reductions iterate every region dimension in
            // increasing row-major order, ignoring the structure vector
            // (reductions are order-insensitive by language definition).
            let saved = self.dim_range;
            let order: Vec<(usize, bool, i64, i64)> = bounds
                .iter()
                .enumerate()
                .map(|(d, &(lo, hi))| (d, true, lo, hi))
                .collect();
            self.emit_static_loops(&order, &mut |c| {
                let icp = c.scratch;
                c.stmt_flops = 0;
                let v = c.operand(rhs)?;
                c.emit(Op::Reduce {
                    op,
                    dst: acc,
                    src: v,
                });
                c.stmt_flops += 1;
                c.emit(Op::Tick {
                    flops: c.stmt_flops.min(u32::MAX as u64) as u32,
                });
                c.scratch = icp;
                Ok(())
            })?;
            self.dim_range = saved;
        }
        self.emit(Op::Mov { dst: lhs, src: acc });
        self.scratch = cp;
        Ok(())
    }

    fn compile_outer(
        &mut self,
        region: zlang::ir::RegionId,
        dim: u8,
        reverse: bool,
        body: &[LStmt],
    ) -> Result<(), ExecError> {
        let bounds = self.region_bounds(region);
        let (lo, hi) = bounds[dim as usize];
        if hi < lo {
            return Ok(()); // statically empty
        }
        let ctr = self.alloc_ctr()?;
        let (start, step, last) = if reverse { (hi, -1, lo) } else { (lo, 1, hi) };
        self.emit(Op::CtrInit {
            ctr,
            cur: start,
            end: last,
            step,
        });
        let head = self.here();
        self.emit(Op::CtrToIdx { d: dim, ctr });
        self.outer_dims.push((dim, ctr, (lo, hi)));
        let saved = self.dim_range;
        self.dim_range[dim as usize] = Some((lo, hi));
        let r = self.compile_stmts(body);
        self.dim_range = saved;
        self.outer_dims.pop();
        r?;
        self.emit(Op::CtrStep { ctr, head });
        Ok(())
    }

    fn compile_for(
        &mut self,
        var: Reg,
        lo: &ScalarExpr,
        hi: &ScalarExpr,
        down: bool,
        body: &[LStmt],
    ) -> Result<(), ExecError> {
        let cp = self.scratch;
        let lo_r = self.soperand(lo)?;
        let hi_r = self.soperand(hi)?;
        let ctr = self.alloc_ctr()?;
        let init = self.emit(Op::ForInit {
            ctr,
            lo: lo_r,
            hi: hi_r,
            down,
            exit: 0,
        });
        // The bound registers are consumed by ForInit; free them before the
        // body so loop bodies do not stack scratch.
        self.scratch = cp;
        let head = self.here();
        self.emit(Op::CtrToScalar { dst: var, ctr });
        self.compile_stmts(body)?;
        self.emit(Op::CtrStep { ctr, head });
        let end = self.here();
        self.patch_jump(init, end);
        Ok(())
    }
}

// ---- disassembly ----------------------------------------------------------

fn binop_sym(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
    }
}

/// Renders an access-table entry's affine flat-index form with every
/// immediate offset spelled out: `@3 = B[17 + 256*i0 + 1*i1]`, with a
/// ` [checked]` suffix when the runtime bounds check was not elided.
fn acc_str(code: &Code, acc: u32) -> String {
    let a = &code.accesses[acc as usize];
    let name = &code.arrays[a.arr as usize].name;
    let mut flat = format!("{}", a.const_flat);
    for d in 0..a.rank as usize {
        if a.strides[d] != 0 {
            flat.push_str(&format!(" + {}*i{}", a.strides[d], d));
        }
    }
    let chk = if a.check.is_some() { " [checked]" } else { "" };
    format!("@{acc} = {name}[{flat}]{chk}")
}

fn lane_src_str(s: LaneSrc) -> String {
    match s {
        LaneSrc::Lane(k) => format!("l{k}"),
        LaneSrc::Scalar(r) => format!("r{r}"),
    }
}

fn lane_op_str(op: &LaneOp) -> String {
    match op {
        LaneOp::Load { dst, acc } => format!("l{dst} = load @{acc}"),
        LaneOp::Store { acc, src } => format!("store @{acc}, {}", lane_src_str(*src)),
        LaneOp::Bin { op, dst, a, b } => format!(
            "l{dst} = {} {} {}",
            lane_src_str(*a),
            binop_sym(*op),
            lane_src_str(*b)
        ),
        LaneOp::Neg { dst, src } => format!("l{dst} = -{}", lane_src_str(*src)),
        LaneOp::Mov { dst, src } => format!("l{dst} = {}", lane_src_str(*src)),
        LaneOp::IdxF { dst, d } => format!("l{dst} = f64(i{d})"),
        LaneOp::Call { intr, dst, args } => format!(
            "l{dst} = {intr:?}({})",
            args.iter()
                .map(|&a| lane_src_str(a))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        LaneOp::Tick { flops } => format!("tick flops={flops}"),
    }
}

fn op_str(code: &Code, op: &Op) -> (&'static str, String) {
    match *op {
        Op::Add { dst, a, b } => ("add", format!("r{dst} = r{a} + r{b}")),
        Op::Sub { dst, a, b } => ("sub", format!("r{dst} = r{a} - r{b}")),
        Op::Mul { dst, a, b } => ("mul", format!("r{dst} = r{a} * r{b}")),
        Op::Div { dst, a, b } => ("div", format!("r{dst} = r{a} / r{b}")),
        Op::Bin { op, dst, a, b } => ("bin", format!("r{dst} = r{a} {} r{b}", binop_sym(op))),
        Op::Neg { dst, src } => ("neg", format!("r{dst} = -r{src}")),
        Op::Mov { dst, src } => ("mov", format!("r{dst} = r{src}")),
        Op::Call { intr, dst, base, n } => (
            "call",
            format!("r{dst} = {intr:?}(r{base}..r{})", base as u32 + n as u32),
        ),
        Op::IdxF { dst, d } => ("idxf", format!("r{dst} = f64(i{d})")),
        Op::Load { dst, acc } => ("load", format!("r{dst} = load {}", acc_str(code, acc))),
        Op::Store { acc, src } => ("store", format!("store {}, r{src}", acc_str(code, acc))),
        Op::Reduce { op, dst, src } => ("reduce", format!("r{dst} = {op:?}(r{dst}, r{src})")),
        Op::Tick { flops } => ("tick", format!("flops={flops}")),
        Op::NestBegin { nest } => ("nest", format!("begin nest {nest}")),
        Op::ReduceBegin => ("rbegin", "begin reduction".to_string()),
        Op::ParBegin { par } => {
            let p = &code.pars[par as usize];
            (
                "par",
                format!(
                    "p{par}: dim i{} start {} step {} extent {} pcs [{}, {})",
                    p.dim, p.start, p.step, p.extent, p.entry, p.exit
                ),
            )
        }
        Op::Alloc { arr } => (
            "alloc",
            format!(
                "a{arr} {} ({} elems)",
                code.arrays[arr as usize].name, code.arrays[arr as usize].elems
            ),
        ),
        Op::SetIdx { d, v } => ("setidx", format!("i{d} = {v}")),
        Op::IdxStep {
            d,
            step,
            stop,
            head,
        } => (
            "idxstep",
            format!("i{d} += {step}; if i{d} != {stop} goto {head}"),
        ),
        Op::CtrInit {
            ctr,
            cur,
            end,
            step,
        } => ("ctrinit", format!("c{ctr} = {cur} step {step} until {end}")),
        Op::CtrToIdx { d, ctr } => ("ctridx", format!("i{d} = c{ctr}")),
        Op::CtrToScalar { dst, ctr } => ("ctrf", format!("r{dst} = f64(c{ctr})")),
        Op::ForInit {
            ctr,
            lo,
            hi,
            down,
            exit,
        } => (
            "forinit",
            format!(
                "c{ctr} = r{lo}..r{hi}{}; if empty goto {exit}",
                if down { " down" } else { "" }
            ),
        ),
        Op::CtrStep { ctr, head } => (
            "ctrstep",
            format!("c{ctr} step; goto {head} while in range"),
        ),
        Op::Jmp { target } => ("jmp", format!("goto {target}")),
        Op::JmpIfZero { cond, target } => ("jz", format!("if r{cond} == 0 goto {target}")),
        Op::LdLdBin {
            op,
            dst,
            da,
            aa,
            db,
            ab,
        } => (
            "ld.ld.bin",
            format!(
                "r{da} = load {}; r{db} = load {}; r{dst} = r{da} {} r{db}",
                acc_str(code, aa),
                acc_str(code, ab),
                binop_sym(op)
            ),
        ),
        Op::LdBin {
            op,
            dst,
            dl,
            acc,
            other,
            right,
        } => (
            "ld.bin",
            format!(
                "r{dl} = load {}; r{dst} = {}",
                acc_str(code, acc),
                if right {
                    format!("r{other} {} r{dl}", binop_sym(op))
                } else {
                    format!("r{dl} {} r{other}", binop_sym(op))
                }
            ),
        ),
        Op::BinBin {
            op1,
            d1,
            a1,
            b1,
            op2,
            d2,
            a2,
            b2,
        } => (
            "bin.bin",
            format!(
                "r{d1} = r{a1} {} r{b1}; r{d2} = r{a2} {} r{b2}",
                binop_sym(op1),
                binop_sym(op2)
            ),
        ),
        Op::BinSt { op, dst, a, b, acc } => (
            "bin.st",
            format!(
                "r{dst} = r{a} {} r{b}; store {}, r{dst}",
                binop_sym(op),
                acc_str(code, acc)
            ),
        ),
        Op::LdSt { dst, la, sa } => (
            "ld.st",
            format!(
                "r{dst} = load {}; store {}, r{dst}",
                acc_str(code, la),
                acc_str(code, sa)
            ),
        ),
        Op::SimdBegin { simd } => {
            let s = &code.simds[simd as usize];
            (
                "simd",
                format!(
                    "s{simd}: dim i{} lanes {} range [{}, {}) step {} pcs [{}, {})",
                    s.dim, s.lanes, s.start, s.stop, s.step, s.head, s.exit
                ),
            )
        }
        Op::Halt => ("halt", String::new()),
    }
}

/// Renders the compiled program as a readable listing: every op with its
/// operand details (register numbers, immediate offsets, jump targets),
/// followed by the constant, parallel-ladder, and simd-loop tables
/// (including each simd loop's decoded lane program). Deterministic for a
/// given program + binding, so the output can be golden-snapshotted.
pub(crate) fn disasm(code: &Code) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        ";; bytecode: {} ops, frame {} regs ({} scalars, consts at r{}), \
         {} accesses, {} arrays, {} par ladders, {} simd loops",
        code.ops.len(),
        code.frame,
        code.n_scalars,
        code.const_base,
        code.accesses.len(),
        code.arrays.len(),
        code.pars.len(),
        code.simds.len()
    );
    for (i, v) in code.consts.iter().enumerate() {
        let _ = writeln!(out, ";; const r{} = {v:?}", code.const_base as usize + i);
    }
    for (pc, op) in code.ops.iter().enumerate() {
        let (mnemonic, detail) = op_str(code, op);
        let _ = writeln!(out, "{pc:>4}  {mnemonic:<9} {detail}");
    }
    for (i, s) in code.simds.iter().enumerate() {
        let _ = writeln!(
            out,
            ";; simd s{i}: {} lane regs {:?}, lane body:",
            s.lane_regs.len(),
            s.lane_regs
        );
        for lop in &s.body {
            let _ = writeln!(out, ";;   {}", lane_op_str(lop));
        }
    }
    out
}
