//! Static verification of compiled `bytecode`.
//!
//! The bytecode compiler elides the runtime bounds check on an array
//! access whenever the enclosing loops' index ranges prove it in bounds —
//! and the VM trusts that elision. This module re-proves the claim from
//! the bytecode alone, without consulting the compiler's reasoning, in
//! three phases:
//!
//! 1. **Structural** — every jump target, register, counter, dimension,
//!    access-table entry, and array index is in range, and the program
//!    ends in `Halt`.
//! 2. **Initialization** — a must-initialized forward dataflow (bit sets,
//!    intersection at joins) proves every register, index slot, and
//!    counter is written before it is read, and every array is allocated
//!    before it is accessed. Program scalars and interned constants are
//!    pre-initialized by construction.
//! 3. **Bounds** — an interval analysis over the index vector (counters
//!    have statically known ranges, so only `idx` needs a fixpoint)
//!    proves, for every access *without* a runtime check, that the flat
//!    index stays within the array's allocation for all reachable index
//!    values; accesses *with* a runtime check are verified to actually
//!    dominate the flat index (every contributing dimension is checked
//!    and the checked ranges cover the allocation).
//!
//! 4. **SIMD structure** — every `Op::SimdBegin` annotation is
//!    re-derived from the bytecode: the loop shape must match the recorded
//!    `SimdInfo`, the lane body must decode to
//!    exactly the recorded lane program, and the recorded lane count must
//!    not exceed the width the alias analysis re-proves safe (per-lane
//!    bounds are the base access interval widened by the lane stride;
//!    chunk clamping keeps every lane index inside the scalar-proven
//!    range, so the width is the load-bearing claim).
//!
//! Superinstructions (`LdLdBin` et al.) verify exactly like their
//! constituent sequences: each phase treats a bundle as its ordered
//! micro-ops, so the unchecked-access proof covers every inline operand.
//!
//! A program that passes all phases can run on the VM's unchecked
//! fast path ([`Vm::verify`](crate::Vm::verify)): element loads and
//! stores skip the slice bounds check, which the proof has discharged.
#![deny(missing_docs)]

use crate::bytecode::{Code, Op, MAX_LANES, MAX_RANK};
use crate::simd;
use std::fmt;

/// A finding from the bytecode verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyDiagnostic {
    /// The instruction the finding is about, if op-local.
    pub pc: Option<usize>,
    /// What could not be proven, in one sentence.
    pub message: String,
}

impl VerifyDiagnostic {
    fn at(pc: usize, message: impl Into<String>) -> Self {
        VerifyDiagnostic {
            pc: Some(pc),
            message: message.into(),
        }
    }

    fn global(message: impl Into<String>) -> Self {
        VerifyDiagnostic {
            pc: None,
            message: message.into(),
        }
    }

    /// Renders the diagnostic rustc-style, matching the frontend's format.
    pub fn render(&self) -> String {
        let loc = self.pc.map(|pc| format!("bytecode pc {pc}"));
        zlang::error::render_diagnostic(
            "error",
            "verify::bytecode",
            &self.message,
            loc.as_deref(),
            &[],
        )
    }
}

impl fmt::Display for VerifyDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pc {
            Some(pc) => write!(f, "error[verify::bytecode]: {} (pc {pc})", self.message),
            None => write!(f, "error[verify::bytecode]: {}", self.message),
        }
    }
}

/// An inclusive integer interval. `FULL` is the conservative "unknown"
/// value, kept well away from `i64` limits so transfer arithmetic cannot
/// overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    lo: i64,
    hi: i64,
}

const HUGE: i64 = i64::MAX / 4;

impl Interval {
    const FULL: Interval = Interval {
        lo: -HUGE,
        hi: HUGE,
    };

    fn point(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    fn shift(self, by: i64) -> Interval {
        Interval {
            lo: self.lo.saturating_add(by).clamp(-HUGE, HUGE),
            hi: self.hi.saturating_add(by).clamp(-HUGE, HUGE),
        }
    }
}

/// The successors of an op, as `(target, edge)` pairs; `edge` selects the
/// transfer variant for ops whose out-state differs per edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeKind {
    /// Plain fallthrough or jump: state passes through the generic
    /// transfer.
    Flow,
    /// The back edge of [`Op::IdxStep`]: the index was stepped and the
    /// loop continues.
    IdxBack,
    /// The fallthrough of [`Op::IdxStep`]: the index equals `stop`.
    IdxExit,
    /// The fallthrough of [`Op::ForInit`]: the counter is initialized.
    ForEnter,
}

fn successors(pc: usize, op: &Op, out: &mut Vec<(usize, EdgeKind)>) {
    out.clear();
    match *op {
        Op::Halt => {}
        Op::Jmp { target } => out.push((target as usize, EdgeKind::Flow)),
        Op::JmpIfZero { target, .. } => {
            out.push((pc + 1, EdgeKind::Flow));
            out.push((target as usize, EdgeKind::Flow));
        }
        Op::IdxStep { head, .. } => {
            out.push((pc + 1, EdgeKind::IdxExit));
            out.push((head as usize, EdgeKind::IdxBack));
        }
        Op::CtrStep { head, .. } => {
            out.push((pc + 1, EdgeKind::Flow));
            out.push((head as usize, EdgeKind::Flow));
        }
        Op::ForInit { exit, .. } => {
            out.push((pc + 1, EdgeKind::ForEnter));
            out.push((exit as usize, EdgeKind::Flow));
        }
        _ => out.push((pc + 1, EdgeKind::Flow)),
    }
}

/// Verifies a compiled program. Returns all findings; an empty vector
/// means every phase passed and the unchecked fast path is safe.
pub(crate) fn verify(code: &Code) -> Vec<VerifyDiagnostic> {
    let mut diags = structural(code);
    if !diags.is_empty() {
        return diags; // later phases index by the quantities checked here
    }
    diags.extend(initialization(code));
    if !diags.is_empty() {
        return diags; // bounds analysis assumes defined-before-use
    }
    diags.extend(bounds(code));
    if !diags.is_empty() {
        return diags; // the simd re-analysis assumes in-bounds accesses
    }
    diags.extend(simd_structure(code));
    diags
}

// ---- phase 1: structural ---------------------------------------------------

fn structural(code: &Code) -> Vec<VerifyDiagnostic> {
    let mut diags = Vec::new();
    let n = code.ops.len();
    if !matches!(code.ops.last(), Some(Op::Halt)) {
        diags.push(VerifyDiagnostic::global(
            "program does not end in a Halt instruction",
        ));
    }
    let frame = code.frame as usize;
    let bad_reg = |pc: usize, r: u16, diags: &mut Vec<VerifyDiagnostic>| {
        if r as usize >= frame {
            diags.push(VerifyDiagnostic::at(
                pc,
                format!("register {r} is outside the frame of {frame} registers"),
            ));
        }
    };
    let bad_target = |pc: usize, t: u32, diags: &mut Vec<VerifyDiagnostic>| {
        if t as usize >= n {
            diags.push(VerifyDiagnostic::at(
                pc,
                format!("jump target {t} is outside the program of {n} instructions"),
            ));
        }
    };
    let bad_dim = |pc: usize, d: u8, diags: &mut Vec<VerifyDiagnostic>| {
        if d as usize >= MAX_RANK {
            diags.push(VerifyDiagnostic::at(
                pc,
                format!("index dimension {d} exceeds the VM maximum rank {MAX_RANK}"),
            ));
        }
    };
    let bad_ctr = |pc: usize, c: u16, diags: &mut Vec<VerifyDiagnostic>| {
        if c >= code.n_ctrs {
            diags.push(VerifyDiagnostic::at(
                pc,
                format!(
                    "counter {c} is outside the {} allocated counters",
                    code.n_ctrs
                ),
            ));
        }
    };
    let bad_acc = |pc: usize, acc: u32, diags: &mut Vec<VerifyDiagnostic>| {
        if acc as usize >= code.accesses.len() {
            diags.push(VerifyDiagnostic::at(
                pc,
                format!("access-table index {acc} is out of range"),
            ));
        }
    };
    for (pc, op) in code.ops.iter().enumerate() {
        match *op {
            Op::Add { dst, a, b }
            | Op::Sub { dst, a, b }
            | Op::Mul { dst, a, b }
            | Op::Div { dst, a, b }
            | Op::Bin { dst, a, b, .. } => {
                bad_reg(pc, dst, &mut diags);
                bad_reg(pc, a, &mut diags);
                bad_reg(pc, b, &mut diags);
            }
            Op::Neg { dst, src } | Op::Mov { dst, src } => {
                bad_reg(pc, dst, &mut diags);
                bad_reg(pc, src, &mut diags);
            }
            Op::Call { dst, base, n, .. } => {
                bad_reg(pc, dst, &mut diags);
                if base as usize + n as usize > frame {
                    diags.push(VerifyDiagnostic::at(
                        pc,
                        format!(
                            "call arguments {base}..{} overflow the frame of {frame} registers",
                            base as usize + n as usize
                        ),
                    ));
                }
            }
            Op::IdxF { dst, d } => {
                bad_reg(pc, dst, &mut diags);
                bad_dim(pc, d, &mut diags);
            }
            Op::Load { dst, acc } => {
                bad_reg(pc, dst, &mut diags);
                if acc as usize >= code.accesses.len() {
                    diags.push(VerifyDiagnostic::at(
                        pc,
                        format!("access-table index {acc} is out of range"),
                    ));
                }
            }
            Op::Store { acc, src } => {
                bad_reg(pc, src, &mut diags);
                if acc as usize >= code.accesses.len() {
                    diags.push(VerifyDiagnostic::at(
                        pc,
                        format!("access-table index {acc} is out of range"),
                    ));
                }
            }
            Op::Reduce { dst, src, .. } => {
                bad_reg(pc, dst, &mut diags);
                bad_reg(pc, src, &mut diags);
            }
            Op::Tick { .. } | Op::ReduceBegin | Op::Halt => {}
            Op::ParBegin { par } => {
                if par as usize >= code.pars.len() {
                    diags.push(VerifyDiagnostic::at(
                        pc,
                        format!("parallel-ladder index {par} is out of range"),
                    ));
                } else {
                    let info = &code.pars[par as usize];
                    if info.dim as usize >= MAX_RANK {
                        diags.push(VerifyDiagnostic::at(
                            pc,
                            format!(
                                "parallel ladder partitions dimension {} beyond the VM \
                                 maximum rank {MAX_RANK}",
                                info.dim
                            ),
                        ));
                    }
                    bad_target(pc, info.entry, &mut diags);
                    if info.exit as usize > n {
                        diags.push(VerifyDiagnostic::at(
                            pc,
                            format!("parallel-ladder exit {} is outside the program", info.exit),
                        ));
                    }
                }
            }
            Op::NestBegin { nest } => {
                if nest as usize >= code.nests.len() {
                    diags.push(VerifyDiagnostic::at(
                        pc,
                        format!("nest index {nest} is out of range"),
                    ));
                }
            }
            Op::Alloc { arr } => {
                if arr as usize >= code.arrays.len() {
                    diags.push(VerifyDiagnostic::at(
                        pc,
                        format!("array index {arr} is out of range"),
                    ));
                }
            }
            Op::SetIdx { d, .. } => bad_dim(pc, d, &mut diags),
            Op::IdxStep { d, head, .. } => {
                bad_dim(pc, d, &mut diags);
                bad_target(pc, head, &mut diags);
            }
            Op::CtrInit { ctr, .. } => bad_ctr(pc, ctr, &mut diags),
            Op::CtrToIdx { d, ctr } => {
                bad_dim(pc, d, &mut diags);
                bad_ctr(pc, ctr, &mut diags);
            }
            Op::CtrToScalar { dst, ctr } => {
                bad_reg(pc, dst, &mut diags);
                bad_ctr(pc, ctr, &mut diags);
            }
            Op::ForInit {
                ctr, lo, hi, exit, ..
            } => {
                bad_ctr(pc, ctr, &mut diags);
                bad_reg(pc, lo, &mut diags);
                bad_reg(pc, hi, &mut diags);
                bad_target(pc, exit, &mut diags);
            }
            Op::CtrStep { ctr, head } => {
                bad_ctr(pc, ctr, &mut diags);
                bad_target(pc, head, &mut diags);
            }
            Op::Jmp { target } => bad_target(pc, target, &mut diags),
            Op::JmpIfZero { cond, target } => {
                bad_reg(pc, cond, &mut diags);
                bad_target(pc, target, &mut diags);
            }
            Op::LdLdBin {
                dst,
                da,
                aa,
                db,
                ab,
                ..
            } => {
                bad_reg(pc, dst, &mut diags);
                bad_reg(pc, da, &mut diags);
                bad_reg(pc, db, &mut diags);
                bad_acc(pc, aa, &mut diags);
                bad_acc(pc, ab, &mut diags);
            }
            Op::LdBin {
                dst,
                dl,
                acc,
                other,
                ..
            } => {
                bad_reg(pc, dst, &mut diags);
                bad_reg(pc, dl, &mut diags);
                bad_reg(pc, other, &mut diags);
                bad_acc(pc, acc, &mut diags);
            }
            Op::BinBin {
                d1,
                a1,
                b1,
                d2,
                a2,
                b2,
                ..
            } => {
                for r in [d1, a1, b1, d2, a2, b2] {
                    bad_reg(pc, r, &mut diags);
                }
            }
            Op::BinSt { dst, a, b, acc, .. } => {
                bad_reg(pc, dst, &mut diags);
                bad_reg(pc, a, &mut diags);
                bad_reg(pc, b, &mut diags);
                bad_acc(pc, acc, &mut diags);
            }
            Op::LdSt { dst, la, sa } => {
                bad_reg(pc, dst, &mut diags);
                bad_acc(pc, la, &mut diags);
                bad_acc(pc, sa, &mut diags);
            }
            Op::SimdBegin { simd } => {
                if simd as usize >= code.simds.len() {
                    diags.push(VerifyDiagnostic::at(
                        pc,
                        format!("simd-loop index {simd} is out of range"),
                    ));
                } else {
                    let info = &code.simds[simd as usize];
                    if info.dim as usize >= MAX_RANK {
                        diags.push(VerifyDiagnostic::at(
                            pc,
                            format!(
                                "simd loop iterates dimension {} beyond the VM maximum \
                                 rank {MAX_RANK}",
                                info.dim
                            ),
                        ));
                    }
                    bad_target(pc, info.head, &mut diags);
                    if info.exit as usize > n {
                        diags.push(VerifyDiagnostic::at(
                            pc,
                            format!("simd-loop exit {} is outside the program", info.exit),
                        ));
                    }
                }
            }
        }
    }
    for (i, a) in code.accesses.iter().enumerate() {
        if a.arr as usize >= code.arrays.len() {
            diags.push(VerifyDiagnostic::global(format!(
                "access {i} names array {} which does not exist",
                a.arr
            )));
        }
        if a.rank as usize > MAX_RANK {
            diags.push(VerifyDiagnostic::global(format!(
                "access {i} has rank {} > {MAX_RANK}",
                a.rank
            )));
        }
        if let Some(chk) = &a.check {
            for &(d, ..) in &chk.dims {
                if d as usize >= a.rank as usize {
                    diags.push(VerifyDiagnostic::global(format!(
                        "access {i} checks dimension {d} beyond its rank {}",
                        a.rank
                    )));
                }
            }
        }
    }
    diags
}

// ---- phase 2: initialization ----------------------------------------------

/// Must-initialized facts at one program point. Arrays of `bool` instead
/// of packed words: frames are tens of registers, programs a few hundred
/// ops, so clarity wins.
#[derive(Clone, PartialEq, Eq)]
struct InitState {
    regs: Vec<bool>,
    idx: [bool; MAX_RANK],
    ctrs: Vec<bool>,
    arrays: Vec<bool>,
}

impl InitState {
    fn entry(code: &Code) -> Self {
        let mut regs = vec![false; code.frame as usize];
        // Program scalars start at 0.0 by language definition and interned
        // constants are materialized at VM construction.
        for r in regs.iter_mut().take(code.n_scalars as usize) {
            *r = true;
        }
        let cb = code.const_base as usize;
        for r in regs.iter_mut().skip(cb).take(code.consts.len()) {
            *r = true;
        }
        InitState {
            regs,
            idx: [false; MAX_RANK],
            ctrs: vec![false; code.n_ctrs as usize],
            arrays: vec![false; code.arrays.len()],
        }
    }

    /// Must-analysis join: a fact holds only if it holds on every path.
    fn intersect(&mut self, other: &InitState) -> bool {
        let mut changed = false;
        let all = self
            .regs
            .iter_mut()
            .zip(&other.regs)
            .chain(self.idx.iter_mut().zip(&other.idx))
            .chain(self.ctrs.iter_mut().zip(&other.ctrs))
            .chain(self.arrays.iter_mut().zip(&other.arrays));
        for (mine, theirs) in all {
            if *mine && !theirs {
                *mine = false;
                changed = true;
            }
        }
        changed
    }
}

/// The index dimensions an access reads: every dimension that contributes
/// to the flat index, plus every dimension its runtime check inspects.
fn access_dims(code: &Code, acc: u32) -> Vec<usize> {
    let a = &code.accesses[acc as usize];
    let mut dims: Vec<usize> = (0..a.rank as usize)
        .filter(|&d| a.strides[d] != 0)
        .collect();
    if let Some(chk) = &a.check {
        for &(d, ..) in &chk.dims {
            if !dims.contains(&(d as usize)) {
                dims.push(d as usize);
            }
        }
    }
    dims
}

fn initialization(code: &Code) -> Vec<VerifyDiagnostic> {
    let n = code.ops.len();
    let mut states: Vec<Option<InitState>> = vec![None; n];
    states[0] = Some(InitState::entry(code));
    let mut work: Vec<usize> = vec![0];
    let mut diags = Vec::new();
    let mut reported = vec![false; n];
    let mut succ = Vec::new();

    let require_reg = |pc: usize,
                       r: u16,
                       st: &InitState,
                       reported: &mut [bool],
                       diags: &mut Vec<VerifyDiagnostic>| {
        if !st.regs[r as usize] && !reported[pc] {
            reported[pc] = true;
            diags.push(VerifyDiagnostic::at(
                pc,
                format!("register {r} may be read before it is written"),
            ));
        }
    };
    // The array-allocated and index-dimension preconditions of one array
    // access (the `Load`/`Store` halves of superinstructions share them).
    let require_acc = |pc: usize,
                       acc: u32,
                       st: &InitState,
                       reported: &mut [bool],
                       diags: &mut Vec<VerifyDiagnostic>| {
        let a = &code.accesses[acc as usize];
        if !st.arrays[a.arr as usize] && !reported[pc] {
            reported[pc] = true;
            diags.push(VerifyDiagnostic::at(
                pc,
                format!(
                    "array `{}` may be accessed before it is allocated",
                    code.arrays[a.arr as usize].name
                ),
            ));
        }
        for d in access_dims(code, acc) {
            if !st.idx[d] && !reported[pc] {
                reported[pc] = true;
                diags.push(VerifyDiagnostic::at(
                    pc,
                    format!("index dimension {d} may be read before it is set"),
                ));
            }
        }
    };

    while let Some(pc) = work.pop() {
        let st = states[pc].clone().expect("queued pcs have a state");
        let op = code.ops[pc];
        let mut out = st.clone();
        match op {
            Op::Add { dst, a, b }
            | Op::Sub { dst, a, b }
            | Op::Mul { dst, a, b }
            | Op::Div { dst, a, b }
            | Op::Bin { dst, a, b, .. } => {
                require_reg(pc, a, &st, &mut reported, &mut diags);
                require_reg(pc, b, &st, &mut reported, &mut diags);
                out.regs[dst as usize] = true;
            }
            Op::Neg { dst, src } | Op::Mov { dst, src } => {
                require_reg(pc, src, &st, &mut reported, &mut diags);
                out.regs[dst as usize] = true;
            }
            Op::Call { dst, base, n, .. } => {
                for k in 0..n as usize {
                    require_reg(pc, base + k as u16, &st, &mut reported, &mut diags);
                }
                out.regs[dst as usize] = true;
            }
            Op::IdxF { dst, d } => {
                if !st.idx[d as usize] && !reported[pc] {
                    reported[pc] = true;
                    diags.push(VerifyDiagnostic::at(
                        pc,
                        format!("index dimension {d} may be read before it is set"),
                    ));
                }
                out.regs[dst as usize] = true;
            }
            Op::Load { dst, acc } | Op::Store { acc, src: dst } => {
                if matches!(op, Op::Store { .. }) {
                    require_reg(pc, dst, &st, &mut reported, &mut diags);
                }
                let a = &code.accesses[acc as usize];
                if !st.arrays[a.arr as usize] && !reported[pc] {
                    reported[pc] = true;
                    diags.push(VerifyDiagnostic::at(
                        pc,
                        format!(
                            "array `{}` may be accessed before it is allocated",
                            code.arrays[a.arr as usize].name
                        ),
                    ));
                }
                for d in access_dims(code, acc) {
                    if !st.idx[d] && !reported[pc] {
                        reported[pc] = true;
                        diags.push(VerifyDiagnostic::at(
                            pc,
                            format!("index dimension {d} may be read before it is set"),
                        ));
                    }
                }
                if matches!(op, Op::Load { .. }) {
                    out.regs[dst as usize] = true;
                }
            }
            Op::Reduce { dst, src, .. } => {
                require_reg(pc, dst, &st, &mut reported, &mut diags);
                require_reg(pc, src, &st, &mut reported, &mut diags);
            }
            Op::Tick { .. }
            | Op::NestBegin { .. }
            | Op::ParBegin { .. }
            | Op::ReduceBegin
            | Op::Halt => {}
            Op::Alloc { arr } => out.arrays[arr as usize] = true,
            Op::SetIdx { d, .. } => out.idx[d as usize] = true,
            Op::IdxStep { d, .. } => {
                if !st.idx[d as usize] && !reported[pc] {
                    reported[pc] = true;
                    diags.push(VerifyDiagnostic::at(
                        pc,
                        format!("index dimension {d} may be stepped before it is set"),
                    ));
                }
                out.idx[d as usize] = true;
            }
            Op::CtrInit { ctr, .. } => out.ctrs[ctr as usize] = true,
            Op::CtrToIdx { d, ctr } => {
                if !st.ctrs[ctr as usize] && !reported[pc] {
                    reported[pc] = true;
                    diags.push(VerifyDiagnostic::at(
                        pc,
                        format!("counter {ctr} may be read before it is initialized"),
                    ));
                }
                out.idx[d as usize] = true;
            }
            Op::CtrToScalar { dst, ctr } => {
                if !st.ctrs[ctr as usize] && !reported[pc] {
                    reported[pc] = true;
                    diags.push(VerifyDiagnostic::at(
                        pc,
                        format!("counter {ctr} may be read before it is initialized"),
                    ));
                }
                out.regs[dst as usize] = true;
            }
            Op::ForInit { lo, hi, .. } => {
                require_reg(pc, lo, &st, &mut reported, &mut diags);
                require_reg(pc, hi, &st, &mut reported, &mut diags);
                // the counter becomes initialized on the enter edge only
            }
            Op::CtrStep { ctr, .. } => {
                if !st.ctrs[ctr as usize] && !reported[pc] {
                    reported[pc] = true;
                    diags.push(VerifyDiagnostic::at(
                        pc,
                        format!("counter {ctr} may be stepped before it is initialized"),
                    ));
                }
            }
            Op::Jmp { .. } => {}
            Op::JmpIfZero { cond, .. } => require_reg(pc, cond, &st, &mut reported, &mut diags),
            // Superinstructions: the ordered constituent semantics. A
            // register written by an earlier half of the same bundle
            // (e.g. the load feeding `LdBin`'s arithmetic) needs no
            // precondition.
            Op::LdLdBin {
                dst,
                da,
                db,
                aa,
                ab,
                ..
            } => {
                require_acc(pc, aa, &st, &mut reported, &mut diags);
                require_acc(pc, ab, &st, &mut reported, &mut diags);
                out.regs[da as usize] = true;
                out.regs[db as usize] = true;
                out.regs[dst as usize] = true;
            }
            Op::LdBin {
                dst,
                dl,
                acc,
                other,
                ..
            } => {
                require_acc(pc, acc, &st, &mut reported, &mut diags);
                if other != dl {
                    require_reg(pc, other, &st, &mut reported, &mut diags);
                }
                out.regs[dl as usize] = true;
                out.regs[dst as usize] = true;
            }
            Op::BinBin {
                d1,
                a1,
                b1,
                d2,
                a2,
                b2,
                ..
            } => {
                require_reg(pc, a1, &st, &mut reported, &mut diags);
                require_reg(pc, b1, &st, &mut reported, &mut diags);
                if a2 != d1 {
                    require_reg(pc, a2, &st, &mut reported, &mut diags);
                }
                if b2 != d1 {
                    require_reg(pc, b2, &st, &mut reported, &mut diags);
                }
                out.regs[d1 as usize] = true;
                out.regs[d2 as usize] = true;
            }
            Op::BinSt { dst, a, b, acc, .. } => {
                require_reg(pc, a, &st, &mut reported, &mut diags);
                require_reg(pc, b, &st, &mut reported, &mut diags);
                require_acc(pc, acc, &st, &mut reported, &mut diags);
                out.regs[dst as usize] = true;
            }
            Op::LdSt { dst, la, sa } => {
                require_acc(pc, la, &st, &mut reported, &mut diags);
                require_acc(pc, sa, &st, &mut reported, &mut diags);
                out.regs[dst as usize] = true;
            }
            // The lane path executes exactly the iterations the scalar
            // loop body would; the scalar fall-through edge carries the
            // analysis.
            Op::SimdBegin { .. } => {}
        }
        successors(pc, &op, &mut succ);
        for &(t, edge) in &succ {
            let mut edge_out = out.clone();
            if edge == EdgeKind::ForEnter {
                if let Op::ForInit { ctr, .. } = op {
                    edge_out.ctrs[ctr as usize] = true;
                }
            }
            match &mut states[t] {
                None => {
                    states[t] = Some(edge_out);
                    work.push(t);
                }
                Some(existing) => {
                    if existing.intersect(&edge_out) {
                        work.push(t);
                    }
                }
            }
        }
    }
    diags
}

// ---- phase 3: bounds -------------------------------------------------------

/// Per-counter static value range: the unique `CtrInit` that feeds a
/// counter has compile-time bounds that its `CtrStep` back edge preserves;
/// `ForInit` counters have runtime bounds and stay unknown.
fn ctr_ranges(code: &Code) -> Vec<Interval> {
    let mut ranges = vec![Interval::FULL; code.n_ctrs as usize];
    let mut from_for = vec![false; code.n_ctrs as usize];
    for op in &code.ops {
        match *op {
            Op::CtrInit { ctr, cur, end, .. } => {
                let r = Interval {
                    lo: cur.min(end),
                    hi: cur.max(end),
                };
                let slot = &mut ranges[ctr as usize];
                *slot = if from_for[ctr as usize] {
                    Interval::FULL
                } else if *slot == Interval::FULL {
                    r
                } else {
                    slot.hull(r)
                };
            }
            Op::ForInit { ctr, .. } => {
                from_for[ctr as usize] = true;
                ranges[ctr as usize] = Interval::FULL;
            }
            _ => {}
        }
    }
    ranges
}

/// How many joins a pc absorbs before its intervals widen. Loop bounds
/// are runtime configuration, so a hull-only fixpoint would need one pass
/// per iteration; widening caps that, and the narrowing rounds below
/// recover the exact ranges from the back-edge trims.
const WIDEN_AFTER: u32 = 8;

/// Per-dimension widening thresholds: every constant a dimension's value
/// is compared against or set to anywhere in the program. A creeping
/// bound widens to the nearest threshold instead of ±HUGE, so the
/// fixpoint lands exactly on the loop invariant (e.g. `[start, stop-1]`)
/// even for dimensions carried unchanged around an inner loop's cycle —
/// where plain narrowing could never recover an overshoot.
fn dim_thresholds(code: &Code, ctr_range: &[Interval]) -> [Vec<i64>; MAX_RANK] {
    let mut th: [Vec<i64>; MAX_RANK] = Default::default();
    for op in &code.ops {
        match *op {
            Op::SetIdx { d, v } => th[d as usize].push(v),
            Op::IdxStep { d, stop, .. } => {
                th[d as usize].extend([stop - 1, stop, stop + 1]);
            }
            Op::CtrToIdx { d, ctr } => {
                let r = ctr_range[ctr as usize];
                if r != Interval::FULL {
                    th[d as usize].extend([r.lo, r.hi]);
                }
            }
            _ => {}
        }
    }
    for t in th.iter_mut() {
        t.sort_unstable();
        t.dedup();
    }
    th
}

/// Number of decreasing (narrowing) passes after the widened fixpoint.
/// Each pass re-applies the transfer function without widening; starting
/// from a post-fixpoint this only shrinks intervals and stays sound. Two
/// passes settle a widened nest; the rest are margin.
const NARROW_PASSES: usize = 4;

type IdxState = [Interval; MAX_RANK];

/// The abstract transfer of one op along one edge. `None` means the edge
/// is infeasible from this state (an empty stepped-index range).
fn transfer(op: Op, st: &IdxState, edge: EdgeKind, ctr_range: &[Interval]) -> Option<IdxState> {
    let mut out = *st;
    match (op, edge) {
        (Op::SetIdx { d, v }, _) => out[d as usize] = Interval::point(v),
        (Op::CtrToIdx { d, ctr }, _) => out[d as usize] = ctr_range[ctr as usize],
        (Op::IdxStep { d, step, stop, .. }, EdgeKind::IdxBack) => {
            let stepped = st[d as usize].shift(step);
            // The loop continues only while the stepped value has not
            // reached `stop`; for unit steps that walk toward `stop` this
            // trims the boundary exactly.
            let trimmed = if step == 1 && stepped.hi >= stop {
                Interval {
                    lo: stepped.lo,
                    hi: stop - 1,
                }
            } else if step == -1 && stepped.lo <= stop {
                Interval {
                    lo: stop + 1,
                    hi: stepped.hi,
                }
            } else {
                stepped
            };
            if trimmed.lo > trimmed.hi {
                return None; // the back edge is infeasible
            }
            out[d as usize] = trimmed;
        }
        (Op::IdxStep { d, stop, .. }, EdgeKind::IdxExit) => {
            out[d as usize] = Interval::point(stop);
        }
        _ => {}
    }
    Some(out)
}

fn bounds(code: &Code) -> Vec<VerifyDiagnostic> {
    let n = code.ops.len();
    let ctr_range = ctr_ranges(code);
    let thresholds = dim_thresholds(code, &ctr_range);
    let entry = [Interval::FULL; MAX_RANK];
    let mut states: Vec<Option<IdxState>> = vec![None; n];
    states[0] = Some(entry);
    let mut joins = vec![0u32; n];
    let mut work: Vec<usize> = vec![0];
    let mut succ = Vec::new();

    // Increasing phase with threshold widening: a bound that keeps
    // creeping (a loop accumulating its range one iteration per pass)
    // jumps to the next program constant — or ±HUGE past the last one —
    // so the fixpoint is independent of the runtime loop trip counts.
    while let Some(pc) = work.pop() {
        let st = states[pc].expect("queued pcs have a state");
        let op = code.ops[pc];
        successors(pc, &op, &mut succ);
        for &(t, edge) in &succ {
            let Some(out) = transfer(op, &st, edge, &ctr_range) else {
                continue;
            };
            match &mut states[t] {
                None => {
                    states[t] = Some(out);
                    work.push(t);
                }
                Some(existing) => {
                    let widen = joins[t] >= WIDEN_AFTER;
                    let mut joined = *existing;
                    for (d, (je, oe)) in joined.iter_mut().zip(&out).enumerate() {
                        if oe.lo < je.lo {
                            je.lo = if widen {
                                // largest threshold <= the requested bound
                                thresholds[d]
                                    .iter()
                                    .rev()
                                    .find(|&&v| v <= oe.lo)
                                    .copied()
                                    .unwrap_or(-HUGE)
                            } else {
                                oe.lo
                            };
                        }
                        if oe.hi > je.hi {
                            je.hi = if widen {
                                // smallest threshold >= the requested bound
                                thresholds[d]
                                    .iter()
                                    .find(|&&v| v >= oe.hi)
                                    .copied()
                                    .unwrap_or(HUGE)
                            } else {
                                oe.hi
                            };
                        }
                    }
                    if joined != *existing {
                        joins[t] += 1;
                        *existing = joined;
                        work.push(t);
                    }
                }
            }
        }
    }

    // Decreasing phase: recompute every state as the plain join of its
    // predecessors' transfer outputs. The back-edge trim now pulls the
    // widened bounds back to the actual loop ranges.
    let mut preds: Vec<Vec<(usize, EdgeKind)>> = vec![Vec::new(); n];
    for (pc, op) in code.ops.iter().enumerate() {
        successors(pc, op, &mut succ);
        for &(t, edge) in &succ {
            preds[t].push((pc, edge));
        }
    }
    for _ in 0..NARROW_PASSES {
        let mut changed = false;
        for t in 0..n {
            let mut acc: Option<IdxState> = if t == 0 { Some(entry) } else { None };
            for &(p, edge) in &preds[t] {
                let Some(pst) = states[p] else { continue };
                let Some(out) = transfer(code.ops[p], &pst, edge, &ctr_range) else {
                    continue;
                };
                acc = Some(match acc {
                    None => out,
                    Some(mut a) => {
                        for (ae, oe) in a.iter_mut().zip(&out) {
                            *ae = ae.hull(*oe);
                        }
                        a
                    }
                });
            }
            if acc != states[t] {
                states[t] = acc;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // With the fixpoint in hand, discharge every reachable access.
    let mut diags = Vec::new();
    let mut checked_ok = vec![None::<bool>; code.accesses.len()];
    for (pc, op) in code.ops.iter().enumerate() {
        // Superinstructions discharge every inline access exactly like
        // the equivalent `Load`/`Store` sequence would.
        let op_accs: [Option<u32>; 2] = match *op {
            Op::Load { acc, .. } | Op::Store { acc, .. } => [Some(acc), None],
            Op::LdLdBin { aa, ab, .. } => [Some(aa), Some(ab)],
            Op::LdBin { acc, .. } | Op::BinSt { acc, .. } => [Some(acc), None],
            Op::LdSt { la, sa, .. } => [Some(la), Some(sa)],
            _ => continue,
        };
        let Some(st) = states[pc] else {
            continue; // unreachable code never executes its access
        };
        for acc in op_accs.into_iter().flatten() {
            let a = &code.accesses[acc as usize];
            let info = &code.arrays[a.arr as usize];
            if let Some(chk) = &a.check {
                // The runtime check must actually dominate the flat index;
                // this is per-access, not per-site.
                let ok = checked_ok[acc as usize]
                    .get_or_insert_with(|| check_covers(code, acc as usize));
                if !*ok {
                    diags.push(VerifyDiagnostic::at(
                        pc,
                        format!(
                            "runtime check on access {acc} to `{}` does not cover the flat \
                         index it guards",
                            code.arrays[chk.arr.0 as usize].name
                        ),
                    ));
                }
                continue;
            }
            // No runtime check: the interval analysis must prove the flat
            // index in bounds for every reachable index value.
            let mut flat_lo = a.const_flat as i128;
            let mut flat_hi = a.const_flat as i128;
            for (s, r) in a.strides.iter().zip(st.iter()).take(a.rank as usize) {
                let s = *s as i128;
                if s == 0 {
                    continue;
                }
                if s > 0 {
                    flat_lo += s * r.lo as i128;
                    flat_hi += s * r.hi as i128;
                } else {
                    flat_lo += s * r.hi as i128;
                    flat_hi += s * r.lo as i128;
                }
            }
            if flat_lo < 0 || flat_hi >= info.elems as i128 {
                diags.push(VerifyDiagnostic::at(
                    pc,
                    format!(
                        "cannot prove unchecked access {acc} to `{}` in bounds: flat index \
                     ranges over [{flat_lo}, {flat_hi}] but the array has {} elements",
                        info.name, info.elems
                    ),
                ));
            }
        }
    }
    diags
}

// ---- phase 4: simd structure ------------------------------------------------

/// Re-derives every `Op::SimdBegin` annotation from the bytecode alone.
///
/// The annotation claims: the two ops that follow are the `SetIdx` and
/// body of a straight-line innermost loop matching the recorded bounds,
/// the recorded lane program is exactly what the body decodes to, and
/// `lanes` iterations may run op-major without reordering any conflicting
/// access pair. The shape is checked syntactically; the lane program and
/// the safe width are re-proven by running the same analysis the rewrite
/// used ([`simd::analyze_loop`]) and comparing. Per-lane interval bounds
/// need no separate discharge: the lane runner clamps whole chunks inside
/// `[start, stop)`, so every per-lane index interval is the base interval
/// already proven by phase 3, widened by at most `(lanes-1)·step` — which
/// chunk clamping keeps inside the scalar range. What phase 3 cannot see
/// is a *width* overflowing the aliasing-proven distance, so that is what
/// this phase rejects.
fn simd_structure(code: &Code) -> Vec<VerifyDiagnostic> {
    let mut diags = Vec::new();
    for (pc, op) in code.ops.iter().enumerate() {
        let Op::SimdBegin { simd } = *op else {
            continue;
        };
        let info = &code.simds[simd as usize];
        if !(2..=MAX_LANES as u8).contains(&info.lanes) {
            diags.push(VerifyDiagnostic::at(
                pc,
                format!(
                    "simd loop {simd} records {} lanes, outside the legal 2..={MAX_LANES}",
                    info.lanes
                ),
            ));
            continue;
        }
        let head = info.head as usize;
        let exit = info.exit as usize;
        if head != pc + 2 || exit < head + 1 || exit > code.ops.len() {
            diags.push(VerifyDiagnostic::at(
                pc,
                format!("simd loop {simd} does not annotate the loop that follows it"),
            ));
            continue;
        }
        match code.ops[pc + 1] {
            Op::SetIdx { d, v } if d == info.dim && v == info.start => {}
            _ => {
                diags.push(VerifyDiagnostic::at(
                    pc,
                    format!(
                        "simd loop {simd} expects `SetIdx i{} = {}` at pc {}",
                        info.dim,
                        info.start,
                        pc + 1
                    ),
                ));
                continue;
            }
        }
        match code.ops[exit - 1] {
            Op::IdxStep {
                d,
                step,
                stop,
                head: h,
            } if d == info.dim && step == info.step && stop == info.stop && h == info.head => {}
            _ => {
                diags.push(VerifyDiagnostic::at(
                    pc,
                    format!(
                        "simd loop {simd} expects its back edge `IdxStep i{}` at pc {}",
                        info.dim,
                        exit - 1
                    ),
                ));
                continue;
            }
        }
        let Some(cand) = simd::analyze_loop(code, head, exit - 1, info.dim as usize, info.step)
        else {
            diags.push(VerifyDiagnostic::at(
                pc,
                format!(
                    "simd loop {simd} annotates a body that does not re-verify as vectorizable"
                ),
            ));
            continue;
        };
        if info.lanes > cand.lanes {
            diags.push(VerifyDiagnostic::at(
                pc,
                format!(
                    "simd loop {simd} records {} lanes but the lane stride widens the \
                     access intervals past the proven safe width of {}",
                    info.lanes, cand.lanes
                ),
            ));
            continue;
        }
        if info.body != cand.body || info.lane_regs != cand.lane_regs {
            diags.push(VerifyDiagnostic::at(
                pc,
                format!(
                    "simd loop {simd} has mismatched superinstruction operands: the lane \
                     program does not decode from the loop body"
                ),
            ));
        }
    }
    diags
}

/// Does the access's runtime check imply `0 <= flat < elems`?
///
/// The check asserts `0 <= idx[d] + off_d - lo_d < ext_d` per entry. With
/// `i_d := idx[d] + off_d - lo_d`, the flat index equals
/// `const_flat - Σ s_d·(off_d - lo_d) + Σ s_d·i_d`; when the constant
/// part cancels (`const_flat = Σ s_d·(off_d - lo_d)`) and every stride
/// obeys the row-major bound `Σ s_d·(ext_d - 1) < elems` with `s_d >= 0`,
/// the per-dimension ranges telescope to `0 <= flat < elems`.
fn check_covers(code: &Code, acc: usize) -> bool {
    let a = &code.accesses[acc];
    let chk = a.check.as_ref().expect("caller checked");
    let info = &code.arrays[a.arr as usize];
    // Every contributing dimension must be checked, with a non-negative
    // stride (row-major strides are non-negative by construction).
    let mut entry_of = [None; MAX_RANK];
    for e in &chk.dims {
        entry_of[e.0 as usize] = Some(*e);
    }
    let mut const_part = 0i128;
    let mut max_flat = 0i128;
    for (s, entry) in a.strides.iter().zip(entry_of.iter()).take(a.rank as usize) {
        let s = *s as i128;
        if s == 0 {
            continue;
        }
        if s < 0 {
            return false;
        }
        let Some((_, off, lo, ext)) = *entry else {
            return false;
        };
        if ext <= 0 {
            // The check can never pass, so the access never happens.
            return true;
        }
        const_part += s * (off - lo) as i128;
        max_flat += s * (ext - 1) as i128;
    }
    a.const_flat as i128 == const_part && max_flat < info.elems as i128
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{compile, Access};
    use crate::ir::{EExpr, ElemRef, ElemStmt, LStmt, LoopNest, ScalarProgram};
    use zlang::ir::{ArrayId, ConfigBinding, Offset, RegionId};

    fn nest_program(structure: Vec<i8>, off: Vec<i64>) -> ScalarProgram {
        let program = zlang::compile(
            "program t; config n : int = 6; region R = [1..n, 1..n]; \
             var A, B : [R] float; var s : float; begin end",
        )
        .unwrap();
        ScalarProgram {
            program,
            stmts: vec![LStmt::Nest(LoopNest {
                region: RegionId(0),
                structure,
                body: vec![ElemStmt {
                    target: ElemRef::Array(ArrayId(0), Offset(vec![0, 0])),
                    rhs: EExpr::Load(ArrayId(1), Offset(off)),
                }],
                cluster: 0,
                temps: 0,
            })],
        }
    }

    fn compiled(sp: &ScalarProgram) -> Code {
        compile(sp, &ConfigBinding::defaults(&sp.program)).unwrap()
    }

    #[test]
    fn clean_program_verifies() {
        let sp = nest_program(vec![1, 2], vec![0, 0]);
        let code = compiled(&sp);
        let diags = verify(&code);
        assert!(diags.is_empty(), "{diags:?}");
        // The aligned access was compiled without a runtime check, so the
        // verifier really proved something.
        assert!(code.accesses.iter().any(|a| a.check.is_none()));
    }

    #[test]
    fn reversed_structure_verifies() {
        let sp = nest_program(vec![-2, -1], vec![0, 0]);
        let diags = verify(&compiled(&sp));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn checked_halo_access_verifies() {
        // The offset leaves the region, so the compiler emits a runtime
        // check; the verifier accepts it as covering the flat index.
        let sp = nest_program(vec![1, 2], vec![0, -1]);
        let code = compiled(&sp);
        assert!(code.accesses.iter().any(|a| a.check.is_some()));
        let diags = verify(&code);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn bad_jump_target_is_reported() {
        let sp = nest_program(vec![1, 2], vec![0, 0]);
        let mut code = compiled(&sp);
        let bad = code.ops.len() as u32 + 7;
        for op in code.ops.iter_mut() {
            if let Op::IdxStep { head, .. } = op {
                *head = bad;
            }
        }
        let diags = verify(&code);
        assert!(
            diags.iter().any(|d| d.message.contains("jump target")),
            "{diags:?}"
        );
    }

    #[test]
    fn uninitialized_register_is_reported() {
        let sp = nest_program(vec![1, 2], vec![0, 0]);
        let mut code = compiled(&sp);
        // Redirect a Load's destination to read... rather, inject a read
        // of a scratch register that nothing ever writes.
        let scratch = code.frame - 1;
        let first_store = code
            .ops
            .iter()
            .position(|op| matches!(op, Op::Store { .. }))
            .unwrap();
        if let Op::Store { src, .. } = &mut code.ops[first_store] {
            *src = scratch;
        }
        // Make sure nothing defines it: grow the frame by one and use the
        // fresh register instead.
        code.frame += 1;
        if let Op::Store { src, .. } = &mut code.ops[first_store] {
            *src = code.frame - 1;
        }
        let diags = verify(&code);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("read before it is written")),
            "{diags:?}"
        );
    }

    #[test]
    fn unallocated_array_access_is_reported() {
        let sp = nest_program(vec![1, 2], vec![0, 0]);
        let mut code = compiled(&sp);
        let alloc_pcs: Vec<usize> = code
            .ops
            .iter()
            .enumerate()
            .filter(|(_, op)| matches!(op, Op::Alloc { .. }))
            .map(|(pc, _)| pc)
            .collect();
        code.ops.retain(|op| !matches!(op, Op::Alloc { .. }));
        // Dropping ops shifts every later pc; keep the par table honest so
        // the diagnostic under test is the only defect.
        for par in code.pars.iter_mut() {
            par.entry -= alloc_pcs
                .iter()
                .filter(|&&p| p < par.entry as usize)
                .count() as u32;
            par.exit -= alloc_pcs.iter().filter(|&&p| p < par.exit as usize).count() as u32;
        }
        let diags = verify(&code);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("before it is allocated")),
            "{diags:?}"
        );
    }

    #[test]
    fn out_of_range_access_entry_is_reported() {
        let sp = nest_program(vec![1, 2], vec![0, 0]);
        let mut code = compiled(&sp);
        for op in code.ops.iter_mut() {
            if let Op::Load { acc, .. } = op {
                *acc = 999;
            }
        }
        let diags = verify(&code);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("access-table index")),
            "{diags:?}"
        );
    }

    #[test]
    fn unprovable_unchecked_access_is_reported() {
        let sp = nest_program(vec![1, 2], vec![0, 0]);
        let mut code = compiled(&sp);
        // Strip the check-free load's alignment: shift its constant so the
        // flat index walks past the end of the allocation.
        let target = code
            .accesses
            .iter()
            .position(|a: &Access| a.check.is_none())
            .unwrap();
        code.accesses[target].const_flat += 1;
        let diags = verify(&code);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("cannot prove unchecked access")),
            "{diags:?}"
        );
    }

    #[test]
    fn corrupted_check_is_reported() {
        let sp = nest_program(vec![1, 2], vec![0, -1]);
        let mut code = compiled(&sp);
        let target = code
            .accesses
            .iter()
            .position(|a: &Access| a.check.is_some())
            .unwrap();
        // A check that inspects no dimensions guards nothing.
        code.accesses[target].check.as_mut().unwrap().dims.clear();
        let diags = verify(&code);
        assert!(
            diags.iter().any(|d| d.message.contains("does not cover")),
            "{diags:?}"
        );
    }

    #[test]
    fn missing_halt_is_reported() {
        let sp = nest_program(vec![1, 2], vec![0, 0]);
        let mut code = compiled(&sp);
        code.ops.pop();
        let diags = verify(&code);
        assert!(
            diags.iter().any(|d| d.message.contains("Halt")),
            "{diags:?}"
        );
    }

    /// `A[i] = A[i-2] + 1` over `[3..n]`: superfuses into a simd loop
    /// whose alias analysis caps the lane width at 2 (the dependence
    /// distance), giving the corruption tests a proven bound to overflow.
    fn stencil_program() -> ScalarProgram {
        let program = zlang::compile(
            "program t; config n : int = 16; region R = [1..n]; \
             region S = [3..n]; var A, B : [R] float; var s : float; \
             begin end",
        )
        .unwrap();
        ScalarProgram {
            program,
            stmts: vec![LStmt::Nest(LoopNest {
                region: RegionId(1),
                structure: vec![1],
                body: vec![ElemStmt {
                    target: ElemRef::Array(ArrayId(0), Offset(vec![0])),
                    rhs: EExpr::Binary(
                        zlang::ast::BinOp::Add,
                        Box::new(EExpr::Load(ArrayId(0), Offset(vec![-2]))),
                        Box::new(EExpr::Const(1.0)),
                    ),
                }],
                cluster: 0,
                temps: 0,
            })],
        }
    }

    fn superfused(sp: &ScalarProgram) -> Code {
        let mut code = compiled(sp);
        crate::simd::superfuse(&mut code);
        code
    }

    #[test]
    fn peephole_output_verifies() {
        let code = superfused(&stencil_program());
        assert_eq!(code.simds.len(), 1, "the stencil loop should annotate");
        assert_eq!(code.simds[0].lanes, 2, "distance-2 dependence");
        let diags = verify(&code);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn lane_width_past_the_proven_interval_is_rejected() {
        // Hand-corrupt the annotation: claim 4 lanes where the alias
        // analysis proved only 2 are safe. Op-major execution at width 4
        // would read A[i-2] before the lane that writes it runs.
        let mut code = superfused(&stencil_program());
        code.simds[0].lanes = 4;
        let diags = verify(&code);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("proven safe width")),
            "{diags:?}"
        );
    }

    #[test]
    fn mismatched_lane_operands_are_rejected() {
        // Truncate the lane program: the superinstruction no longer
        // decodes from the loop body it claims to vectorize.
        let mut code = superfused(&stencil_program());
        assert!(!code.simds[0].body.is_empty());
        code.simds[0].body.pop();
        let diags = verify(&code);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("mismatched superinstruction operands")),
            "{diags:?}"
        );
    }

    #[test]
    fn mismatched_lane_registers_are_rejected() {
        let mut code = superfused(&stencil_program());
        assert!(!code.simds[0].lane_regs.is_empty());
        // Redirect a lane's writeback register.
        code.simds[0].lane_regs[0] += 1;
        let diags = verify(&code);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("mismatched superinstruction operands")),
            "{diags:?}"
        );
    }

    #[test]
    fn simd_annotation_on_the_wrong_loop_is_rejected() {
        let mut code = superfused(&stencil_program());
        // Point the annotation's head somewhere other than the loop that
        // follows the SimdBegin marker.
        code.simds[0].head += 1;
        let diags = verify(&code);
        assert!(!diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn diagnostic_renders_with_pc() {
        let d = VerifyDiagnostic::at(12, "register 3 may be read before it is written");
        let r = d.render();
        assert!(r.starts_with("error[verify::bytecode]: register 3"), "{r}");
        assert!(r.contains("--> bytecode pc 12"), "{r}");
        assert!(d.to_string().contains("(pc 12)"));
    }
}
