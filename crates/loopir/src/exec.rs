//! The unified execution API: [`Executor`], [`RunOutcome`], [`Engine`].
//!
//! Historically every caller drove the interpreter differently — benches
//! constructed an [`Interp`], ran it, then poked `scalar(ScalarId(0))` for
//! the checksum; the parallel runtime reached for `stats()`; tests mixed
//! both. This module gives all of them one surface:
//!
//! * [`Executor`] — anything that can run a [`ScalarProgram`] to
//!   completion while streaming accesses to an [`Observer`];
//! * [`RunOutcome`] — the complete result of a run (final scalar values
//!   plus [`RunStats`] counters), replacing post-run field poking;
//! * [`Engine`] — selects between the tree-walking [`Interp`] and the
//!   bytecode [`Vm`], for benches and CLI flags.
//!
//! ```
//! # fn main() -> Result<(), loopir::ExecError> {
//! use loopir::{Engine, NoopObserver, ScalarProgram};
//! use zlang::ir::ConfigBinding;
//! let p = zlang::compile(
//!     "program t; region R = [1..4]; var A : [R] float; begin end").unwrap();
//! let sp = ScalarProgram { program: p, stmts: vec![] };
//! for engine in Engine::all() {
//!     let mut exec = engine.executor(&sp, ConfigBinding::defaults(&sp.program))?;
//!     let outcome = exec.execute(&mut NoopObserver)?;
//!     assert_eq!(outcome.stats.points, 0);
//! }
//! # Ok(())
//! # }
//! ```

use crate::interp::{ExecError, Interp, NoopObserver, Observer, RunStats};
use crate::ir::ScalarProgram;
use crate::vm::{SharedProgram, Vm};
use std::fmt;
use std::str::FromStr;
use std::time::{Duration, Instant};
use zlang::ir::{ConfigBinding, ScalarId};

/// Resource budgets for one execution: an abstract-step fuel counter and a
/// wall-clock deadline. The default is unlimited.
///
/// One unit of fuel is one abstract step: a bytecode instruction on the
/// [`Vm`], a loop-nest iteration point on the
/// [`Interp`]. The two engines therefore exhaust a given
/// budget at different program sizes; fuel bounds *work*, it is not a
/// portable measure of it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecLimits {
    /// Abstract steps the run may take, or `None` for unlimited.
    pub fuel: Option<u64>,
    /// Wall-clock instant after which the run must stop, or `None`.
    pub deadline: Option<Instant>,
}

impl ExecLimits {
    /// No limits (the default).
    pub fn none() -> Self {
        ExecLimits::default()
    }

    /// True if neither budget is set.
    pub fn is_unlimited(&self) -> bool {
        self.fuel.is_none() && self.deadline.is_none()
    }

    /// Adds a fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Adds a deadline `d` from now.
    pub fn with_deadline_in(mut self, d: Duration) -> Self {
        self.deadline = Some(Instant::now() + d);
        self
    }
}

/// Execution counters from one tile of a parallel ladder.
///
/// The parallel VM ([`Engine::VmPar`]) fans each tile-partitionable loop
/// ladder out as per-tile tasks; every task counts its own work and
/// returns one `TileStats`. The `(batch, tile)` key is assigned
/// deterministically from the static tile decomposition, so the stream can
/// always be aggregated in the same order regardless of which worker ran
/// which tile — see [`RunOutcome::merge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileStats {
    /// Which fan-out (dynamic ladder execution) of the run this tile
    /// belongs to, in coordinator execution order.
    pub batch: u32,
    /// The tile's index within its batch, in iteration order along the
    /// partitioned dimension.
    pub tile: u32,
    /// Array element loads performed by the tile.
    pub loads: u64,
    /// Array element stores performed by the tile.
    pub stores: u64,
    /// Floating-point operations performed by the tile.
    pub flops: u64,
    /// Iteration points executed by the tile.
    pub points: u64,
    /// Bytecode instructions executed by the tile (the tile's fuel cost).
    pub ops: u64,
}

/// The complete result of one program execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Final values of every program scalar, indexed by [`ScalarId`].
    pub scalars: Vec<f64>,
    /// Execution counters (loads, stores, flops, points, peak bytes).
    pub stats: RunStats,
}

impl RunOutcome {
    pub(crate) fn new(scalars: Vec<f64>, stats: RunStats) -> Self {
        RunOutcome { scalars, stats }
    }

    /// Builds an outcome from the sequential portion of a run plus a
    /// stream of per-tile counters.
    ///
    /// The merge is deterministic: tiles are folded in `(batch, tile)`
    /// order, which the parallel VM assigns from the static tile
    /// decomposition — so the aggregate is independent of worker
    /// scheduling and thread count, and `u64` addition makes it equal to
    /// the sequential run's counters exactly.
    pub fn merge(
        scalars: Vec<f64>,
        base: RunStats,
        tiles: impl IntoIterator<Item = TileStats>,
    ) -> RunOutcome {
        let mut ordered: Vec<TileStats> = tiles.into_iter().collect();
        ordered.sort_by_key(|t| (t.batch, t.tile));
        let mut stats = base;
        for t in &ordered {
            stats.loads += t.loads;
            stats.stores += t.stores;
            stats.flops += t.flops;
            stats.points += t.points;
        }
        RunOutcome::new(scalars, stats)
    }

    /// The conventional checksum: the first declared scalar. Every
    /// benchmark and generated test program declares its checksum scalar
    /// first, so this replaces the old `interp.scalar(ScalarId(0))` idiom.
    /// Returns `0.0` for programs with no scalars.
    pub fn checksum(&self) -> f64 {
        self.scalars.first().copied().unwrap_or(0.0)
    }

    /// The final value of a scalar.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn scalar(&self, id: ScalarId) -> f64 {
        self.scalars[id.0 as usize]
    }
}

/// Runs a [`ScalarProgram`] to completion.
///
/// Implemented by the tree-walking [`Interp`] and the bytecode
/// [`Vm`]; both stream every array element access through the
/// provided [`Observer`], so the cache simulator sees an identical access
/// stream regardless of engine.
pub trait Executor {
    /// Executes the program, reporting accesses to `obs`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on an out-of-region array access (declare
    /// arrays with halos large enough for their `@` offsets).
    fn execute(&mut self, obs: &mut dyn Observer) -> Result<RunOutcome, ExecError>;

    /// Executes without observation (pure functional execution).
    ///
    /// # Errors
    ///
    /// Same as [`Executor::execute`].
    fn execute_pure(&mut self) -> Result<RunOutcome, ExecError> {
        self.execute(&mut NoopObserver)
    }

    /// Installs resource budgets for subsequent [`Executor::execute`]
    /// calls. Both engines implement this (there is deliberately no
    /// silently-ignoring default): when fuel or the deadline runs out the
    /// run stops with an [`ExecError`] of kind
    /// [`Fuel`](crate::ErrorKind::Fuel) or
    /// [`Deadline`](crate::ErrorKind::Deadline).
    fn set_limits(&mut self, limits: ExecLimits);
}

/// Selects an execution engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// The reference tree-walking interpreter ([`Interp`]).
    Interp,
    /// The bytecode compiler + virtual machine ([`Vm`]) —
    /// same observable behavior, substantially faster. The default.
    #[default]
    Vm,
    /// The VM after [`Vm::verify`](crate::Vm::verify): the bytecode
    /// verifier statically proves every element access in bounds and the
    /// dispatch loop drops the per-access slice bounds check. Refuses to
    /// construct (with the verifier's diagnostics) if the proof fails.
    VmVerified,
    /// The verified VM over superinstruction bytecode with lane-based
    /// innermost-loop dispatch: after compilation a peephole pass collapses
    /// fused element-wise chains into superinstructions and annotates
    /// provably vectorizable innermost loops, which the dispatch loop then
    /// executes over unrolled f64 lanes (with a scalar epilogue for
    /// remainders). Reductions stay strictly serial, so results are
    /// `f64::to_bits`-identical to [`Engine::Interp`]. Like
    /// [`Engine::VmVerified`], refuses to construct if the bytecode
    /// verifier's proof — which independently re-derives every
    /// superinstruction and lane annotation — fails. Lane fan-out only
    /// happens under observers that do not consume the per-element address
    /// stream ([`Observer::wants_addresses`]); under the cache simulator
    /// the engine runs scalar, preserving the exact address order.
    VmSimd,
    /// The verified VM with parallel tiled execution: loop ladders the
    /// compiler proved independent along one dimension fan out as per-tile
    /// tasks on a work-stealing `std::thread` pool. Bit-identical to
    /// [`Engine::Interp`] regardless of thread count (reductions stay
    /// sequential, tile counters merge in deterministic tile order).
    /// Like [`Engine::VmVerified`], refuses to construct if the bytecode
    /// verifier's proof fails. Fan-out only happens under observers that
    /// do not consume the per-element address stream
    /// ([`Observer::wants_addresses`]); under the cache simulator the
    /// engine runs sequentially, preserving the exact address order.
    ///
    /// Since the two-tier ISA landed, `VmPar` also runs superinstruction
    /// bytecode and vectorizes the innermost loop of each tile, composing
    /// the thread pool (outer tiles) with lane dispatch (inner loop).
    VmPar,
}

/// Per-execution options beyond the [`Engine`] choice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecOpts {
    /// Worker threads for [`Engine::VmPar`] (including the coordinator);
    /// `0` means one per available core, capped at 8. Other engines
    /// ignore this.
    pub threads: usize,
    /// Unrolled f64 lanes for the innermost-loop dispatch of
    /// [`Engine::VmSimd`] and [`Engine::VmPar`]; `0` means the default
    /// width (4), and widths are capped at 8. `1` disables lane dispatch
    /// (the engine runs the same superinstruction bytecode scalar). Other
    /// engines ignore this.
    pub lanes: usize,
}

impl ExecOpts {
    /// Options requesting a specific thread count.
    pub fn with_threads(threads: usize) -> Self {
        ExecOpts {
            threads,
            ..ExecOpts::default()
        }
    }

    /// Options requesting a specific lane width.
    pub fn with_lanes(lanes: usize) -> Self {
        ExecOpts {
            lanes,
            ..ExecOpts::default()
        }
    }
}

impl Engine {
    /// Every engine, reference interpreter first.
    pub fn all() -> [Engine; 5] {
        [
            Engine::Interp,
            Engine::Vm,
            Engine::VmVerified,
            Engine::VmSimd,
            Engine::VmPar,
        ]
    }

    /// The engine's flag/display name (`interp`, `vm`, `vm-verified`,
    /// `vm-simd`, or `vm-par`).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Interp => "interp",
            Engine::Vm => "vm",
            Engine::VmVerified => "vm-verified",
            Engine::VmSimd => "vm-simd",
            Engine::VmPar => "vm-par",
        }
    }

    /// Creates a boxed executor for a program under a config binding,
    /// with default [`ExecOpts`] (automatic thread count for
    /// [`Engine::VmPar`]).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if the program cannot be lowered (e.g. a
    /// region of rank greater than the VM supports).
    pub fn executor<'p>(
        self,
        prog: &'p ScalarProgram,
        binding: ConfigBinding,
    ) -> Result<Box<dyn Executor + 'p>, ExecError> {
        self.executor_with(prog, binding, ExecOpts::default())
    }

    /// Creates a boxed executor with explicit [`ExecOpts`].
    ///
    /// # Errors
    ///
    /// As [`Engine::executor`]; additionally, `VmVerified` and `VmPar`
    /// return a [`Verify`](crate::ErrorKind::Verify) error carrying every
    /// diagnostic when the bytecode verifier rejects the program.
    pub fn executor_with<'p>(
        self,
        prog: &'p ScalarProgram,
        binding: ConfigBinding,
        opts: ExecOpts,
    ) -> Result<Box<dyn Executor + 'p>, ExecError> {
        Ok(match self {
            Engine::Interp => Box::new(Interp::new(prog, binding)),
            Engine::Vm => Box::new(Vm::new(prog, binding)?),
            Engine::VmVerified => Box::new(verified_vm(prog, binding)?),
            Engine::VmSimd => {
                let mut vm = superfused_vm(prog, binding)?;
                vm.set_lanes(opts.lanes);
                Box::new(vm)
            }
            Engine::VmPar => {
                let mut vm = superfused_vm(prog, binding)?;
                vm.set_lanes(opts.lanes);
                vm.set_threads(opts.threads);
                Box::new(vm)
            }
        })
    }

    /// Compiles a program once into a thread-shareable
    /// [`SharedProgram`] handle for this engine, or `None` for
    /// [`Engine::Interp`] (the tree-walking interpreter has no compiled
    /// form to share; callers re-instantiate it from the
    /// [`ScalarProgram`]).
    ///
    /// The handle remembers whether verification ran: `VmVerified` and
    /// `VmPar` verify here, once, so every executor later built from the
    /// handle with [`Engine::shared_executor`] starts on the unchecked
    /// fast path without re-running the verifier. This is the compile
    /// half of the compile-once/execute-many serving path — the
    /// `fusion_core` compile cache stores exactly this handle.
    ///
    /// # Errors
    ///
    /// As [`Engine::executor`]: lowering failures for every VM engine,
    /// plus verifier rejections for `VmVerified` and `VmPar`.
    pub fn compile_shared(
        self,
        prog: &ScalarProgram,
        binding: ConfigBinding,
    ) -> Result<Option<SharedProgram>, ExecError> {
        Ok(match self {
            Engine::Interp => None,
            Engine::Vm => Some(Vm::new(prog, binding)?.share()),
            Engine::VmVerified => Some(verified_vm(prog, binding)?.share()),
            Engine::VmSimd | Engine::VmPar => Some(superfused_vm(prog, binding)?.share()),
        })
    }

    /// Builds a fresh executor around an already-compiled
    /// [`SharedProgram`] — one `Arc` bump plus run-state allocation, no
    /// recompilation and no re-verification. This is the hit half of the
    /// compile-once/execute-many serving path.
    ///
    /// The handle must have come from [`Engine::compile_shared`] on a
    /// compatible engine: a `VmVerified`/`VmPar` executor built from an
    /// unverified handle runs with bounds checks on (correct, just
    /// slower), never unchecked.
    pub fn shared_executor(self, shared: &SharedProgram, opts: ExecOpts) -> Box<dyn Executor> {
        let mut vm = Vm::from_shared(shared);
        if matches!(self, Engine::VmSimd | Engine::VmPar) {
            vm.set_lanes(opts.lanes);
        }
        if self == Engine::VmPar {
            vm.set_threads(opts.threads);
        }
        Box::new(vm)
    }
}

/// Compiles and verifies a VM, converting verifier diagnostics into a
/// [`Verify`](crate::ErrorKind::Verify)-kind error.
fn verified_vm(prog: &ScalarProgram, binding: ConfigBinding) -> Result<Vm, ExecError> {
    let mut vm = Vm::new(prog, binding)?;
    if let Err(diags) = vm.verify() {
        let msgs: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
        return Err(ExecError::verify(format!(
            "bytecode verification failed:\n{}",
            msgs.join("\n")
        )));
    }
    Ok(vm)
}

/// Compiles with the superinstruction peephole, then verifies — the
/// construction path for [`Engine::VmSimd`] and [`Engine::VmPar`]. The
/// verifier re-derives every superinstruction and lane annotation from
/// first principles, so a peephole bug cannot reach the unchecked lane
/// dispatch: the engine refuses to construct instead.
fn superfused_vm(prog: &ScalarProgram, binding: ConfigBinding) -> Result<Vm, ExecError> {
    let mut vm = Vm::new_superfused(prog, binding)?;
    if let Err(diags) = vm.verify() {
        let msgs: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
        return Err(ExecError::verify(format!(
            "bytecode verification failed:\n{}",
            msgs.join("\n")
        )));
    }
    Ok(vm)
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interp" | "interpreter" => Ok(Engine::Interp),
            "vm" | "bytecode" => Ok(Engine::Vm),
            "vm-verified" | "verified" => Ok(Engine::VmVerified),
            "vm-simd" | "simd" => Ok(Engine::VmSimd),
            "vm-par" | "parallel" => Ok(Engine::VmPar),
            other => Err(format!(
                "unknown engine `{other}` (expected `interp`, `vm`, `vm-verified`, \
                 `vm-simd`, or `vm-par`)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_parses_and_displays() {
        assert_eq!("vm".parse::<Engine>().unwrap(), Engine::Vm);
        assert_eq!("interp".parse::<Engine>().unwrap(), Engine::Interp);
        assert_eq!("vm-verified".parse::<Engine>().unwrap(), Engine::VmVerified);
        assert_eq!("verified".parse::<Engine>().unwrap(), Engine::VmVerified);
        assert_eq!("vm-simd".parse::<Engine>().unwrap(), Engine::VmSimd);
        assert_eq!("simd".parse::<Engine>().unwrap(), Engine::VmSimd);
        assert_eq!("vm-par".parse::<Engine>().unwrap(), Engine::VmPar);
        assert_eq!("parallel".parse::<Engine>().unwrap(), Engine::VmPar);
        assert!("jit".parse::<Engine>().is_err());
        assert_eq!(Engine::Vm.to_string(), "vm");
        assert_eq!(Engine::VmVerified.to_string(), "vm-verified");
        assert_eq!(Engine::VmSimd.to_string(), "vm-simd");
        assert_eq!(Engine::VmPar.to_string(), "vm-par");
        assert_eq!(Engine::default(), Engine::Vm);
        assert_eq!(Engine::all().len(), 5);
    }

    #[test]
    fn merge_is_order_independent_and_exact() {
        let a = TileStats {
            batch: 0,
            tile: 1,
            loads: 10,
            stores: 5,
            flops: 7,
            points: 5,
            ops: 40,
        };
        let b = TileStats {
            batch: 0,
            tile: 0,
            loads: 2,
            stores: 1,
            flops: 3,
            points: 1,
            ops: 9,
        };
        let base = RunStats {
            loads: 100,
            ..RunStats::default()
        };
        let fwd = RunOutcome::merge(vec![1.0], base, [a, b]);
        let rev = RunOutcome::merge(vec![1.0], base, [b, a]);
        assert_eq!(fwd, rev);
        assert_eq!(fwd.stats.loads, 112);
        assert_eq!(fwd.stats.stores, 6);
        assert_eq!(fwd.stats.flops, 10);
        assert_eq!(fwd.stats.points, 6);
    }

    #[test]
    fn outcome_checksum_is_first_scalar() {
        let o = RunOutcome::new(vec![3.5, 7.0], RunStats::default());
        assert_eq!(o.checksum(), 3.5);
        assert_eq!(o.scalar(ScalarId(1)), 7.0);
        assert_eq!(RunOutcome::new(vec![], RunStats::default()).checksum(), 0.0);
    }
}
