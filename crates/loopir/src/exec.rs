//! The unified execution API: [`Executor`], [`RunOutcome`], [`Engine`].
//!
//! Historically every caller drove the interpreter differently — benches
//! constructed an [`Interp`], ran it, then poked `scalar(ScalarId(0))` for
//! the checksum; the parallel runtime reached for `stats()`; tests mixed
//! both. This module gives all of them one surface:
//!
//! * [`Executor`] — anything that can run a [`ScalarProgram`] to
//!   completion while streaming accesses to an [`Observer`];
//! * [`RunOutcome`] — the complete result of a run (final scalar values
//!   plus [`RunStats`] counters), replacing post-run field poking;
//! * [`Engine`] — selects between the tree-walking [`Interp`] and the
//!   bytecode [`Vm`], for benches and CLI flags.
//!
//! ```
//! # fn main() -> Result<(), loopir::ExecError> {
//! use loopir::{Engine, NoopObserver, ScalarProgram};
//! use zlang::ir::ConfigBinding;
//! let p = zlang::compile(
//!     "program t; region R = [1..4]; var A : [R] float; begin end").unwrap();
//! let sp = ScalarProgram { program: p, stmts: vec![] };
//! for engine in Engine::all() {
//!     let mut exec = engine.executor(&sp, ConfigBinding::defaults(&sp.program))?;
//!     let outcome = exec.execute(&mut NoopObserver)?;
//!     assert_eq!(outcome.stats.points, 0);
//! }
//! # Ok(())
//! # }
//! ```

use crate::interp::{ExecError, Interp, NoopObserver, Observer, RunStats};
use crate::ir::ScalarProgram;
use crate::vm::Vm;
use std::fmt;
use std::str::FromStr;
use std::time::{Duration, Instant};
use zlang::ir::{ConfigBinding, ScalarId};

/// Resource budgets for one execution: an abstract-step fuel counter and a
/// wall-clock deadline. The default is unlimited.
///
/// One unit of fuel is one abstract step: a bytecode instruction on the
/// [`Vm`], a loop-nest iteration point on the
/// [`Interp`]. The two engines therefore exhaust a given
/// budget at different program sizes; fuel bounds *work*, it is not a
/// portable measure of it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecLimits {
    /// Abstract steps the run may take, or `None` for unlimited.
    pub fuel: Option<u64>,
    /// Wall-clock instant after which the run must stop, or `None`.
    pub deadline: Option<Instant>,
}

impl ExecLimits {
    /// No limits (the default).
    pub fn none() -> Self {
        ExecLimits::default()
    }

    /// True if neither budget is set.
    pub fn is_unlimited(&self) -> bool {
        self.fuel.is_none() && self.deadline.is_none()
    }

    /// Adds a fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Adds a deadline `d` from now.
    pub fn with_deadline_in(mut self, d: Duration) -> Self {
        self.deadline = Some(Instant::now() + d);
        self
    }
}

/// The complete result of one program execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Final values of every program scalar, indexed by [`ScalarId`].
    pub scalars: Vec<f64>,
    /// Execution counters (loads, stores, flops, points, peak bytes).
    pub stats: RunStats,
}

impl RunOutcome {
    pub(crate) fn new(scalars: Vec<f64>, stats: RunStats) -> Self {
        RunOutcome { scalars, stats }
    }

    /// The conventional checksum: the first declared scalar. Every
    /// benchmark and generated test program declares its checksum scalar
    /// first, so this replaces the old `interp.scalar(ScalarId(0))` idiom.
    /// Returns `0.0` for programs with no scalars.
    pub fn checksum(&self) -> f64 {
        self.scalars.first().copied().unwrap_or(0.0)
    }

    /// The final value of a scalar.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn scalar(&self, id: ScalarId) -> f64 {
        self.scalars[id.0 as usize]
    }
}

/// Runs a [`ScalarProgram`] to completion.
///
/// Implemented by the tree-walking [`Interp`] and the bytecode
/// [`Vm`]; both stream every array element access through the
/// provided [`Observer`], so the cache simulator sees an identical access
/// stream regardless of engine.
pub trait Executor {
    /// Executes the program, reporting accesses to `obs`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on an out-of-region array access (declare
    /// arrays with halos large enough for their `@` offsets).
    fn execute(&mut self, obs: &mut dyn Observer) -> Result<RunOutcome, ExecError>;

    /// Executes without observation (pure functional execution).
    ///
    /// # Errors
    ///
    /// Same as [`Executor::execute`].
    fn execute_pure(&mut self) -> Result<RunOutcome, ExecError> {
        self.execute(&mut NoopObserver)
    }

    /// Installs resource budgets for subsequent [`Executor::execute`]
    /// calls. Both engines implement this (there is deliberately no
    /// silently-ignoring default): when fuel or the deadline runs out the
    /// run stops with an [`ExecError`] of kind
    /// [`Fuel`](crate::ErrorKind::Fuel) or
    /// [`Deadline`](crate::ErrorKind::Deadline).
    fn set_limits(&mut self, limits: ExecLimits);
}

/// Selects an execution engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// The reference tree-walking interpreter ([`Interp`]).
    Interp,
    /// The bytecode compiler + virtual machine ([`Vm`]) —
    /// same observable behavior, substantially faster. The default.
    #[default]
    Vm,
    /// The VM after [`Vm::verify`](crate::Vm::verify): the bytecode
    /// verifier statically proves every element access in bounds and the
    /// dispatch loop drops the per-access slice bounds check. Refuses to
    /// construct (with the verifier's diagnostics) if the proof fails.
    VmVerified,
}

impl Engine {
    /// Every engine, reference interpreter first.
    pub fn all() -> [Engine; 3] {
        [Engine::Interp, Engine::Vm, Engine::VmVerified]
    }

    /// The engine's flag/display name (`interp`, `vm`, or `vm-verified`).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Interp => "interp",
            Engine::Vm => "vm",
            Engine::VmVerified => "vm-verified",
        }
    }

    /// Creates a boxed executor for a program under a config binding.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if the program cannot be lowered (e.g. a
    /// region of rank greater than the VM supports).
    pub fn executor<'p>(
        self,
        prog: &'p ScalarProgram,
        binding: ConfigBinding,
    ) -> Result<Box<dyn Executor + 'p>, ExecError> {
        Ok(match self {
            Engine::Interp => Box::new(Interp::new(prog, binding)),
            Engine::Vm => Box::new(Vm::new(prog, binding)?),
            Engine::VmVerified => {
                let mut vm = Vm::new(prog, binding)?;
                if let Err(diags) = vm.verify() {
                    let msgs: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
                    return Err(ExecError::verify(format!(
                        "bytecode verification failed:\n{}",
                        msgs.join("\n")
                    )));
                }
                Box::new(vm)
            }
        })
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interp" | "interpreter" => Ok(Engine::Interp),
            "vm" | "bytecode" => Ok(Engine::Vm),
            "vm-verified" | "verified" => Ok(Engine::VmVerified),
            other => Err(format!(
                "unknown engine `{other}` (expected `interp`, `vm`, or `vm-verified`)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_parses_and_displays() {
        assert_eq!("vm".parse::<Engine>().unwrap(), Engine::Vm);
        assert_eq!("interp".parse::<Engine>().unwrap(), Engine::Interp);
        assert_eq!("vm-verified".parse::<Engine>().unwrap(), Engine::VmVerified);
        assert_eq!("verified".parse::<Engine>().unwrap(), Engine::VmVerified);
        assert!("jit".parse::<Engine>().is_err());
        assert_eq!(Engine::Vm.to_string(), "vm");
        assert_eq!(Engine::VmVerified.to_string(), "vm-verified");
        assert_eq!(Engine::default(), Engine::Vm);
        assert_eq!(Engine::all().len(), 3);
    }

    #[test]
    fn outcome_checksum_is_first_scalar() {
        let o = RunOutcome::new(vec![3.5, 7.0], RunStats::default());
        assert_eq!(o.checksum(), 3.5);
        assert_eq!(o.scalar(ScalarId(1)), 7.0);
        assert_eq!(RunOutcome::new(vec![], RunStats::default()).checksum(), 0.0);
    }
}
