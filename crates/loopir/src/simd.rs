//! Superinstruction peephole + lane-vectorized innermost-loop execution.
//!
//! This module implements the second tier of the two-tier ISA (DESIGN.md
//! §17). [`superfuse`] runs post-compile, in two phases:
//!
//! 1. **Bundling** ([`bundle`]): a peephole over straight-line runs that
//!    collapses the load/arith/store chains the fusion passes produce into
//!    superinstructions (`LdLdBin`, `LdBin`, `BinBin`, `BinSt`, `LdSt`)
//!    carrying their operand offsets inline. Every bundle preserves *all*
//!    constituent register writes in order, so fusing is unconditionally
//!    safe — no liveness analysis, and the scalar dispatcher executing a
//!    bundle is observably identical to the unfused sequence.
//!
//! 2. **Vectorization** ([`vectorize`]): each innermost region loop whose
//!    body is straight-line, check-free, reduction-free, and free of
//!    loop-carried register dependences is decoded once into a lane
//!    program ([`LaneOp`]) and annotated with an [`Op::SimdBegin`] marker.
//!    A cross-iteration alias analysis bounds the safe lane count: for
//!    every same-array access pair with at least one store, a dependence
//!    distance of `m` iterations caps the width at `m` lanes, because the
//!    lane loop executes op-major (each micro-op across all lanes before
//!    the next micro-op) and must never reorder a conflicting load/store
//!    pair within a chunk.
//!
//! Scalar dispatchers treat `SimdBegin` as a no-op and fall through into
//! the loop, so one bytecode serves every engine. A lane-enabled verified
//! VM instead calls [`run_lanes`], which executes whole chunks of `lanes`
//! iterations across unrolled f64 lanes (portable unrolled loops by
//! default, `std::arch` SSE2/AVX2 behind runtime detection) and then
//! resumes the scalar loop for the remainder iterations. Because each
//! lane computes exactly the scalar iteration's values with the same
//! per-element operation order, results stay `f64::to_bits`-identical to
//! the interpreter; loops that would not (reductions, carried deps) are
//! simply never annotated.

use crate::bytecode::{Code, LaneOp, LaneSrc, Op, Reg, SimdInfo, MAX_LANES, MAX_RANK};
use crate::interp::{binop, ExecError};
use crate::vm::{unallocated, VmArray};
use std::collections::HashMap;
use std::time::Instant;
use zlang::ast::BinOp;
use zlang::ir::Intrinsic;

/// Default lane width when the caller does not override it (wide enough
/// to cover one SSE2 register per two lanes; [`MAX_LANES`] is the cap).
pub(crate) const DEFAULT_LANES: usize = 4;

/// Largest intrinsic arity the lane decoder accepts.
const MAX_CALL_ARGS: usize = 4;

/// Rewrites compiled bytecode in place: bundles superinstructions, then
/// annotates vectorizable innermost loops with [`Op::SimdBegin`].
///
/// Idempotent in effect (bundles don't re-bundle; an already-annotated
/// loop body contains `SimdBegin` only at loop *entry*, never inside a
/// body), but intended to run exactly once, straight after
/// `bytecode::compile`.
pub(crate) fn superfuse(code: &mut Code) {
    bundle(code);
    vectorize(code);
}

/// Marks every pc that some control transfer can land on (plus `n`, the
/// one-past-the-end pc a final back edge may test against).
fn jump_targets(code: &Code) -> Vec<bool> {
    let n = code.ops.len();
    let mut t = vec![false; n + 1];
    let mut mark = |p: u32| {
        let p = p as usize;
        if p <= n {
            t[p] = true;
        }
    };
    for op in &code.ops {
        match *op {
            Op::Jmp { target } => mark(target),
            Op::JmpIfZero { target, .. } => mark(target),
            Op::IdxStep { head, .. } => mark(head),
            Op::CtrStep { head, .. } => mark(head),
            Op::ForInit { exit, .. } => mark(exit),
            _ => {}
        }
    }
    for p in &code.pars {
        mark(p.entry);
        mark(p.exit);
    }
    for s in &code.simds {
        mark(s.head);
        mark(s.exit);
    }
    t
}

/// Views an op as a register arithmetic instruction `(op, dst, a, b)`.
fn as_arith(op: &Op) -> Option<(BinOp, Reg, Reg, Reg)> {
    match *op {
        Op::Add { dst, a, b } => Some((BinOp::Add, dst, a, b)),
        Op::Sub { dst, a, b } => Some((BinOp::Sub, dst, a, b)),
        Op::Mul { dst, a, b } => Some((BinOp::Mul, dst, a, b)),
        Op::Div { dst, a, b } => Some((BinOp::Div, dst, a, b)),
        Op::Bin { op, dst, a, b } => Some((op, dst, a, b)),
        _ => None,
    }
}

/// Greedy longest-first peephole: fuses consecutive ops at `i` into one
/// superinstruction, returning the replacement and how many input ops it
/// consumed. A pattern may not span a jump target (other than its own
/// first op), so every control transfer still lands on an op boundary.
fn fuse_at(ops: &[Op], targets: &[bool], i: usize) -> (Op, usize) {
    let free = |k: usize| i + k < ops.len() && !targets[i + k];
    // load; load; arith(dst, the two loads)  →  ld.ld.bin
    if free(1) && free(2) {
        if let (Op::Load { dst: da, acc: aa }, Op::Load { dst: db, acc: ab }) =
            (&ops[i], &ops[i + 1])
        {
            if let Some((op, dst, a, b)) = as_arith(&ops[i + 2]) {
                if a == *da && b == *db {
                    return (
                        Op::LdLdBin {
                            op,
                            dst,
                            da: *da,
                            aa: *aa,
                            db: *db,
                            ab: *ab,
                        },
                        3,
                    );
                }
            }
        }
    }
    if free(1) {
        match (&ops[i], &ops[i + 1]) {
            // load; arith using the load  →  ld.bin
            (Op::Load { dst: dl, acc }, arith) => {
                if let Some((op, dst, a, b)) = as_arith(arith) {
                    if a == *dl || b == *dl {
                        let (other, right) = if a == *dl { (b, false) } else { (a, true) };
                        return (
                            Op::LdBin {
                                op,
                                dst,
                                dl: *dl,
                                acc: *acc,
                                other,
                                right,
                            },
                            2,
                        );
                    }
                }
                // load; store of the load  →  ld.st (copy loops)
                if let Op::Store { acc: sa, src } = &ops[i + 1] {
                    if src == dl {
                        return (
                            Op::LdSt {
                                dst: *dl,
                                la: *acc,
                                sa: *sa,
                            },
                            2,
                        );
                    }
                }
            }
            // arith; store of the result  →  bin.st
            (first, Op::Store { acc, src }) => {
                if let Some((op, dst, a, b)) = as_arith(first) {
                    if *src == dst {
                        return (
                            Op::BinSt {
                                op,
                                dst,
                                a,
                                b,
                                acc: *acc,
                            },
                            2,
                        );
                    }
                }
            }
            // arith; arith  →  bin.bin
            (first, second) => {
                if let (Some((op1, d1, a1, b1)), Some((op2, d2, a2, b2))) =
                    (as_arith(first), as_arith(second))
                {
                    return (
                        Op::BinBin {
                            op1,
                            d1,
                            a1,
                            b1,
                            op2,
                            d2,
                            a2,
                            b2,
                        },
                        2,
                    );
                }
            }
        }
    }
    (ops[i], 1)
}

/// Phase 1: collapse fused element-wise chains into superinstructions and
/// remap every jump target onto the shortened op stream.
fn bundle(code: &mut Code) {
    let targets = jump_targets(code);
    let old = std::mem::take(&mut code.ops);
    let mut new_ops: Vec<Op> = Vec::with_capacity(old.len());
    // remap[old_pc] = new pc of the (bundle containing the) op.
    let mut remap = vec![0u32; old.len() + 1];
    let mut i = 0;
    while i < old.len() {
        let (op, consumed) = fuse_at(&old, &targets, i);
        let here = new_ops.len() as u32;
        for k in 0..consumed {
            remap[i + k] = here;
        }
        new_ops.push(op);
        i += consumed;
    }
    remap[old.len()] = new_ops.len() as u32;
    for op in &mut new_ops {
        match op {
            Op::Jmp { target } => *target = remap[*target as usize],
            Op::JmpIfZero { target, .. } => *target = remap[*target as usize],
            Op::IdxStep { head, .. } => *head = remap[*head as usize],
            Op::CtrStep { head, .. } => *head = remap[*head as usize],
            Op::ForInit { exit, .. } => *exit = remap[*exit as usize],
            _ => {}
        }
    }
    for p in &mut code.pars {
        p.entry = remap[p.entry as usize];
        p.exit = remap[p.exit as usize];
    }
    code.ops = new_ops;
}

/// Phase 2: find vectorizable innermost loops, decode their bodies into
/// lane programs, and insert an [`Op::SimdBegin`] immediately before each
/// loop's `SetIdx` so loop entry (from straight-line fall-through, an
/// outer loop's back edge, or a `ParInfo::entry`) passes through it.
fn vectorize(code: &mut Code) {
    let targets = jump_targets(code);
    // (insert position = the SetIdx pc, SimdInfo with *old* pcs)
    let mut found: Vec<(usize, SimdInfo)> = Vec::new();
    for (t, op) in code.ops.iter().enumerate() {
        let Op::IdxStep {
            d,
            step,
            stop,
            head,
        } = *op
        else {
            continue;
        };
        let h = head as usize;
        if h == 0 || h > t {
            continue;
        }
        let Op::SetIdx { d: sd, v: start } = code.ops[h - 1] else {
            continue;
        };
        if sd != d {
            continue;
        }
        // No side entry into the body (the head itself is the back edge's
        // target; anything else jumping inside would bypass SimdBegin).
        if ((h + 1)..=t).any(|p| targets[p]) {
            continue;
        }
        let extent = (stop - start) / step;
        if extent < 2 {
            continue;
        }
        let Some(cand) = analyze_loop(code, h, t, d as usize, step) else {
            continue;
        };
        found.push((
            h - 1,
            SimdInfo {
                dim: d,
                lanes: cand.lanes,
                start,
                step,
                stop,
                head,
                exit: t as u32 + 1,
                body: cand.body,
                lane_regs: cand.lane_regs,
            },
        ));
    }
    if found.is_empty() {
        return;
    }
    let positions: Vec<usize> = found.iter().map(|(q, _)| *q).collect();
    // A control transfer to old pc p lands after insertion at
    // p + |{q : q < p}|: targets pointing AT an insert position land on
    // the new SimdBegin (loop entry passes through it), all others land
    // on the op they pointed at.
    let shift = |p: u32| -> u32 {
        let p = p as usize;
        (p + positions.iter().filter(|&&q| q < p).count()) as u32
    };
    let old = std::mem::take(&mut code.ops);
    let mut new_ops: Vec<Op> = Vec::with_capacity(old.len() + found.len());
    let mut fi = 0;
    for (p, op) in old.into_iter().enumerate() {
        if fi < found.len() && found[fi].0 == p {
            new_ops.push(Op::SimdBegin { simd: fi as u32 });
            fi += 1;
        }
        new_ops.push(op);
    }
    for op in &mut new_ops {
        match op {
            Op::Jmp { target } => *target = shift(*target),
            Op::JmpIfZero { target, .. } => *target = shift(*target),
            Op::IdxStep { head, .. } => *head = shift(*head),
            Op::CtrStep { head, .. } => *head = shift(*head),
            Op::ForInit { exit, .. } => *exit = shift(*exit),
            _ => {}
        }
    }
    for p in &mut code.pars {
        p.entry = shift(p.entry);
        p.exit = shift(p.exit);
    }
    code.simds = found
        .into_iter()
        .map(|(_, mut info)| {
            info.head = shift(info.head);
            info.exit = shift(info.exit);
            info
        })
        .collect();
    code.ops = new_ops;
}

/// A decoded vectorizable loop body plus its proven safe width.
pub(crate) struct SimdCandidate {
    pub body: Vec<LaneOp>,
    pub lane_regs: Vec<Reg>,
    pub lanes: u8,
}

/// One constituent micro-op of a (possibly bundled) body instruction.
enum Micro {
    Load {
        dst: Reg,
        acc: u32,
    },
    Store {
        acc: u32,
        src: Reg,
    },
    Bin {
        op: BinOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    Neg {
        dst: Reg,
        src: Reg,
    },
    Mov {
        dst: Reg,
        src: Reg,
    },
    IdxF {
        dst: Reg,
        d: u8,
    },
    Call {
        intr: Intrinsic,
        dst: Reg,
        base: Reg,
        n: u8,
    },
    Tick {
        flops: u32,
    },
}

/// Expands body ops (including superinstructions) into micro-ops, or
/// `None` if the body contains anything outside the vectorizable subset
/// (control flow, reductions, observer markers, nested loops).
fn expand(ops: &[Op]) -> Option<Vec<Micro>> {
    let mut out = Vec::with_capacity(ops.len() * 2);
    for op in ops {
        match *op {
            Op::Add { dst, a, b } => out.push(Micro::Bin {
                op: BinOp::Add,
                dst,
                a,
                b,
            }),
            Op::Sub { dst, a, b } => out.push(Micro::Bin {
                op: BinOp::Sub,
                dst,
                a,
                b,
            }),
            Op::Mul { dst, a, b } => out.push(Micro::Bin {
                op: BinOp::Mul,
                dst,
                a,
                b,
            }),
            Op::Div { dst, a, b } => out.push(Micro::Bin {
                op: BinOp::Div,
                dst,
                a,
                b,
            }),
            Op::Bin { op, dst, a, b } => out.push(Micro::Bin { op, dst, a, b }),
            Op::Neg { dst, src } => out.push(Micro::Neg { dst, src }),
            Op::Mov { dst, src } => out.push(Micro::Mov { dst, src }),
            Op::Call { intr, dst, base, n } => out.push(Micro::Call { intr, dst, base, n }),
            Op::IdxF { dst, d } => out.push(Micro::IdxF { dst, d }),
            Op::Load { dst, acc } => out.push(Micro::Load { dst, acc }),
            Op::Store { acc, src } => out.push(Micro::Store { acc, src }),
            Op::Tick { flops } => out.push(Micro::Tick { flops }),
            Op::LdLdBin {
                op,
                dst,
                da,
                aa,
                db,
                ab,
            } => {
                out.push(Micro::Load { dst: da, acc: aa });
                out.push(Micro::Load { dst: db, acc: ab });
                out.push(Micro::Bin {
                    op,
                    dst,
                    a: da,
                    b: db,
                });
            }
            Op::LdBin {
                op,
                dst,
                dl,
                acc,
                other,
                right,
            } => {
                out.push(Micro::Load { dst: dl, acc });
                let (a, b) = if right { (other, dl) } else { (dl, other) };
                out.push(Micro::Bin { op, dst, a, b });
            }
            Op::BinBin {
                op1,
                d1,
                a1,
                b1,
                op2,
                d2,
                a2,
                b2,
            } => {
                out.push(Micro::Bin {
                    op: op1,
                    dst: d1,
                    a: a1,
                    b: b1,
                });
                out.push(Micro::Bin {
                    op: op2,
                    dst: d2,
                    a: a2,
                    b: b2,
                });
            }
            Op::BinSt { op, dst, a, b, acc } => {
                out.push(Micro::Bin { op, dst, a, b });
                out.push(Micro::Store { acc, src: dst });
            }
            Op::LdSt { dst, la, sa } => {
                out.push(Micro::Load { dst, acc: la });
                out.push(Micro::Store { acc: sa, src: dst });
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Decodes the innermost loop body `code.ops[head..tail]` iterating
/// `dim` with `step` into a lane program, and proves a safe lane count.
///
/// Returns `None` when the body is not vectorizable: it contains an op
/// outside the element-wise subset, a checked access, a loop-carried
/// register dependence (a read of a body-written register before its
/// first write in the body — e.g. a running reduction), a store that
/// does not vary along `dim` (every lane would race on one cell), or a
/// same-array dependence at distance < 2 iterations.
pub(crate) fn analyze_loop(
    code: &Code,
    head: usize,
    tail: usize,
    dim: usize,
    step: i64,
) -> Option<SimdCandidate> {
    let micro = expand(&code.ops[head..tail])?;

    // Registers the body writes: a read of one of these *before* its
    // first write means the value flows around the back edge — a
    // loop-carried dependence the lane file cannot represent.
    let mut written: Vec<Reg> = Vec::new();
    for m in &micro {
        match *m {
            Micro::Load { dst, .. }
            | Micro::Bin { dst, .. }
            | Micro::Neg { dst, .. }
            | Micro::Mov { dst, .. }
            | Micro::IdxF { dst, .. }
            | Micro::Call { dst, .. } => written.push(dst),
            Micro::Store { .. } | Micro::Tick { .. } => {}
        }
    }

    let mut lane_of: HashMap<Reg, u16> = HashMap::new();
    let mut lane_regs: Vec<Reg> = Vec::new();
    let mut body: Vec<LaneOp> = Vec::new();
    // Accesses in program order, for the alias analysis below.
    let mut accs: Vec<(u32, bool)> = Vec::new();

    let mut def = |lane_of: &mut HashMap<Reg, u16>, r: Reg| -> u16 {
        *lane_of.entry(r).or_insert_with(|| {
            lane_regs.push(r);
            (lane_regs.len() - 1) as u16
        })
    };
    let src = |lane_of: &HashMap<Reg, u16>, r: Reg| -> Option<LaneSrc> {
        if let Some(&s) = lane_of.get(&r) {
            Some(LaneSrc::Lane(s))
        } else if written.contains(&r) {
            None // read-before-write of a body-written register
        } else {
            Some(LaneSrc::Scalar(r))
        }
    };
    let check_free = |acc: u32| code.accesses[acc as usize].check.is_none();

    for m in &micro {
        match *m {
            Micro::Load { dst, acc } => {
                if !check_free(acc) {
                    return None;
                }
                accs.push((acc, false));
                let dst = def(&mut lane_of, dst);
                body.push(LaneOp::Load { dst, acc });
            }
            Micro::Store { acc, src: r } => {
                if !check_free(acc) {
                    return None;
                }
                accs.push((acc, true));
                let src = src(&lane_of, r)?;
                body.push(LaneOp::Store { acc, src });
            }
            Micro::Bin { op, dst, a, b } => {
                let a = src(&lane_of, a)?;
                let b = src(&lane_of, b)?;
                let dst = def(&mut lane_of, dst);
                body.push(LaneOp::Bin { op, dst, a, b });
            }
            Micro::Neg { dst, src: r } => {
                let src = src(&lane_of, r)?;
                let dst = def(&mut lane_of, dst);
                body.push(LaneOp::Neg { dst, src });
            }
            Micro::Mov { dst, src: r } => {
                let src = src(&lane_of, r)?;
                let dst = def(&mut lane_of, dst);
                body.push(LaneOp::Mov { dst, src });
            }
            Micro::IdxF { dst, d } => {
                let dst = def(&mut lane_of, dst);
                body.push(LaneOp::IdxF { dst, d });
            }
            Micro::Call { intr, dst, base, n } => {
                if n as usize > MAX_CALL_ARGS {
                    return None;
                }
                let mut args = Vec::with_capacity(n as usize);
                for r in base..base + n as Reg {
                    args.push(src(&lane_of, r)?);
                }
                let dst = def(&mut lane_of, dst);
                body.push(LaneOp::Call { intr, dst, args });
            }
            Micro::Tick { flops } => body.push(LaneOp::Tick { flops }),
        }
    }

    // Cross-iteration alias analysis. The lane loop runs op-major, so
    // within a chunk of `L` consecutive iterations every micro-op's L
    // instances execute before the next micro-op's. That only reorders
    // accesses between iterations at distance 1..=L-1; accesses from
    // different chunks keep their scalar order (chunks are sequential),
    // and other-dimension flat contributions cancel (same array ⇒ same
    // strides). Two accesses P, Q of one array collide at distance m
    // when const_flat(P) - const_flat(Q) = m·K with K = stride[dim]·step
    // (the flat advance per iteration), so the width is capped at |m|.
    let mut lanes = MAX_LANES as i64;
    for (i, &(pa, pstore)) in accs.iter().enumerate() {
        let a = &code.accesses[pa as usize];
        let ka = a.strides[dim] * step;
        if pstore && ka == 0 {
            return None; // every lane would write the same cell
        }
        for &(qa, qstore) in &accs[i + 1..] {
            let b = &code.accesses[qa as usize];
            if a.arr != b.arr || !(pstore || qstore) {
                continue;
            }
            let k = ka; // same array ⇒ same strides ⇒ same per-iter advance
            if k == 0 {
                continue; // loads only touch one cell; no cross-lane order
            }
            let dc = a.const_flat - b.const_flat;
            if dc != 0 && dc % k == 0 {
                let m = (dc / k).abs();
                if m >= 1 {
                    lanes = lanes.min(m);
                }
            }
        }
    }
    if lanes < 2 {
        return None;
    }
    Some(SimdCandidate {
        body,
        lane_regs,
        lanes: lanes.min(MAX_LANES as i64) as u8,
    })
}

/// Lane-granular array memory. The VM and the parallel tile executor
/// resolve array storage differently (owned buffers vs. raw tile views),
/// so [`run_lanes`] goes through this trait.
///
/// Resolution happens once per lane run, not per access: the vectorizer
/// only admits loop bodies free of allocation, so a resolved base
/// pointer stays valid (and its length stays exact) for the whole run.
pub(crate) trait LaneMem {
    /// Resolves array `ai` to its base pointer and element count.
    fn resolve(&mut self, ai: usize) -> Result<(*mut f64, usize), ExecError>;
}

#[cold]
fn lane_oob(code: &Code, ai: usize) -> ExecError {
    ExecError::trap(format!(
        "lane access to `{}` outside its allocation (malformed superinstruction)",
        code.arrays[ai].name
    ))
}

/// [`LaneMem`] over the sequential VM's array table.
pub(crate) struct VmMem<'a> {
    pub code: &'a Code,
    pub arrays: &'a mut [Option<VmArray>],
}

impl LaneMem for VmMem<'_> {
    fn resolve(&mut self, ai: usize) -> Result<(*mut f64, usize), ExecError> {
        match self.arrays[ai].as_mut() {
            Some(arr) => Ok((arr.data.as_mut_ptr(), arr.data.len())),
            None => Err(unallocated(self.code, ai)),
        }
    }
}

/// What a [`run_lanes`] call executed, for the dispatcher's accounting.
#[derive(Default)]
pub(crate) struct LaneRun {
    /// Scalar iterations covered (a multiple of the width; the scalar
    /// epilogue owes the remaining `extent - iters`).
    pub iters: i64,
    pub loads: u64,
    pub stores: u64,
    pub flops: u64,
    pub points: u64,
    /// Scalar-equivalent dispatched-op count, for fuel accounting.
    pub ops: u64,
}

/// A [`LaneOp`] lowered for the chunk loop: every operand resolved to a
/// lane slot (loop-invariant scalars pre-broadcast into extra slots),
/// every memory access bound to a [`MemStream`], counters and bounds
/// checks hoisted out of the loop entirely.
enum ChunkOp {
    Load {
        dst: u16,
        mem: u16,
    },
    Store {
        src: u16,
        mem: u16,
    },
    Bin {
        op: BinOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    Neg {
        dst: u16,
        src: u16,
    },
    Mov {
        dst: u16,
        src: u16,
    },
    /// `lane[dst][m] = (base + m*step) as f64` — the loop index along the
    /// vectorized dimension, recomputed from integers each chunk.
    IdxSeq {
        dst: u16,
    },
    Call {
        intr: Intrinsic,
        dst: u16,
        n: u8,
        args: [u16; MAX_CALL_ARGS],
    },
}

/// One memory access's address stream. `flat` is lane 0's flat index for
/// the current chunk; it advances by `dk = l*k` per chunk, and lane `m`
/// reads/writes `flat + m*k`. The base pointer is resolved once per lane
/// run (the vectorizer admits no allocation inside loop bodies) and the
/// whole stream is bounds-checked up front, so the loop itself runs
/// check-free.
struct MemStream {
    ptr: *mut f64,
    flat: i64,
    k: i64,
    dk: i64,
}

/// Builds the [`MemStream`] for access `acc` and proves the whole run in
/// bounds: `flat + m*k + c*dk` is separately monotonic in `m` and `c`,
/// so its extremes over `m < l, c < chunks` are at the four corners.
/// Verified bytecode can never fail this (lane indices stay inside the
/// range the scalar bounds proof covers), but the check keeps the path
/// sound even against malformed `simds` tables.
#[allow(clippy::too_many_arguments)]
fn stream<M: LaneMem>(
    streams: &mut Vec<MemStream>,
    mem: &mut M,
    code: &Code,
    acc: u32,
    idx: &[i64; MAX_RANK],
    dim: usize,
    base: i64,
    step: i64,
    l: usize,
    chunks: i64,
) -> Result<u16, ExecError> {
    let a = &code.accesses[acc as usize];
    let mut flat = a.const_flat;
    for (d, &i) in idx.iter().enumerate().take(a.rank as usize) {
        flat += if d == dim { base } else { i } * a.strides[d];
    }
    let k = a.strides[dim] * step;
    let dk = k * l as i64;
    let (ptr, len) = mem.resolve(a.arr as usize)?;
    let last_c = (chunks - 1) * dk;
    let last_m = (l as i64 - 1) * k;
    let corners = [flat, flat + last_m, flat + last_c, flat + last_c + last_m];
    let lo = corners.iter().copied().min().unwrap();
    let hi = corners.iter().copied().max().unwrap();
    if lo < 0 || hi as usize >= len {
        return Err(lane_oob(code, a.arr as usize));
    }
    streams.push(MemStream { ptr, flat, k, dk });
    Ok((streams.len() - 1) as u16)
}

/// Interns a broadcast slot holding the loop-invariant value `v`.
/// Broadcast slots live past the lane-register slots and are never
/// written by body ops (every body-written register is lane-mapped), so
/// one fill before the loop serves every chunk.
fn bslot(
    slots: &mut HashMap<u64, u16>,
    bcast: &mut Vec<f64>,
    n_lane: usize,
    key: u64,
    v: f64,
) -> u16 {
    *slots.entry(key).or_insert_with(|| {
        bcast.push(v);
        (n_lane + bcast.len() - 1) as u16
    })
}

/// Resolves a [`LaneSrc`] to a lane slot. A `Scalar` source is
/// loop-invariant (a register the body wrote would be lane-mapped), so
/// its current value is broadcast once.
fn src_slot(
    slots: &mut HashMap<u64, u16>,
    bcast: &mut Vec<f64>,
    n_lane: usize,
    regs: &[f64],
    s: LaneSrc,
) -> u16 {
    match s {
        LaneSrc::Lane(k) => k,
        LaneSrc::Scalar(r) => bslot(slots, bcast, n_lane, r as u64, regs[r as usize]),
    }
}

/// Everything the monomorphized chunk executors need.
struct ChunkCtx<'a> {
    ops: &'a [ChunkOp],
    streams: &'a mut [MemStream],
    lane: &'a mut [[f64; MAX_LANES]],
    l: usize,
    chunks: i64,
    /// `idx[dim]` of lane 0 of chunk 0.
    base0: i64,
    /// Per-chunk advance of the base: `l * step`.
    lstep: i64,
    step: i64,
    deadline: Option<Instant>,
}

/// The chunk loop itself. `#[inline(always)]` so each kernel wrapper
/// gets its own copy with `kern` a compile-time constant: the match in
/// [`lane_bin`] folds away and the `std::arch` arithmetic inlines
/// straight into the loop.
#[inline(always)]
fn chunk_loop(kern: Kernel, cx: &mut ChunkCtx) -> Result<(), ExecError> {
    let l = cx.l;
    let mut base = cx.base0;
    let mut argv = [[0.0f64; MAX_LANES]; MAX_CALL_ARGS];
    for c in 0..cx.chunks {
        if c & 0x3F == 0 {
            if let Some(d) = cx.deadline {
                if Instant::now() >= d {
                    return Err(ExecError::deadline());
                }
            }
        }
        for op in cx.ops {
            match op {
                ChunkOp::Load { dst, mem } => {
                    let s = &cx.streams[*mem as usize];
                    let out = &mut cx.lane[*dst as usize];
                    // SAFETY: `stream` proved every `flat + m*k` this
                    // stream will touch in bounds before the loop began.
                    unsafe {
                        if s.k == 1 {
                            std::ptr::copy_nonoverlapping(
                                s.ptr.add(s.flat as usize),
                                out.as_mut_ptr(),
                                l,
                            );
                        } else {
                            for (m, slot) in out.iter_mut().enumerate().take(l) {
                                *slot = *s.ptr.offset((s.flat + m as i64 * s.k) as isize);
                            }
                        }
                    }
                }
                ChunkOp::Store { src, mem } => {
                    let v = cx.lane[*src as usize];
                    let s = &cx.streams[*mem as usize];
                    // SAFETY: as for `Load`.
                    unsafe {
                        if s.k == 1 {
                            std::ptr::copy_nonoverlapping(
                                v.as_ptr(),
                                s.ptr.add(s.flat as usize),
                                l,
                            );
                        } else {
                            for (m, &val) in v.iter().enumerate().take(l) {
                                *s.ptr.offset((s.flat + m as i64 * s.k) as isize) = val;
                            }
                        }
                    }
                }
                ChunkOp::Bin { op, dst, a, b } => {
                    let va = cx.lane[*a as usize];
                    let vb = cx.lane[*b as usize];
                    cx.lane[*dst as usize] = lane_bin(kern, *op, &va, &vb);
                }
                ChunkOp::Neg { dst, src } => {
                    let v = cx.lane[*src as usize];
                    let out = &mut cx.lane[*dst as usize];
                    for m in 0..MAX_LANES {
                        out[m] = -v[m];
                    }
                }
                ChunkOp::Mov { dst, src } => {
                    let v = cx.lane[*src as usize];
                    cx.lane[*dst as usize] = v;
                }
                ChunkOp::IdxSeq { dst } => {
                    let out = &mut cx.lane[*dst as usize];
                    for (m, slot) in out.iter_mut().enumerate() {
                        *slot = (base + m as i64 * cx.step) as f64;
                    }
                }
                ChunkOp::Call { intr, dst, n, args } => {
                    let n = *n as usize;
                    for (i, slot) in argv.iter_mut().enumerate().take(n) {
                        *slot = cx.lane[args[i] as usize];
                    }
                    let out = &mut cx.lane[*dst as usize];
                    let mut one = [0.0f64; MAX_CALL_ARGS];
                    for m in 0..l {
                        for i in 0..n {
                            one[i] = argv[i][m];
                        }
                        out[m] = intr.eval(&one[..n]);
                    }
                }
            }
        }
        for s in cx.streams.iter_mut() {
            s.flat += s.dk;
        }
        base += cx.lstep;
    }
    Ok(())
}

fn run_chunks(kern: Kernel, cx: &mut ChunkCtx) -> Result<(), ExecError> {
    match kern {
        Kernel::Portable => chunk_loop(Kernel::Portable, cx),
        // SAFETY: `kernel()` only selects these after
        // `is_x86_feature_detected!` confirmed the feature.
        #[cfg(target_arch = "x86_64")]
        Kernel::Sse2 => unsafe { chunk_sse2(cx) },
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { chunk_avx2(cx) },
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn chunk_sse2(cx: &mut ChunkCtx) -> Result<(), ExecError> {
    chunk_loop(Kernel::Sse2, cx)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn chunk_avx2(cx: &mut ChunkCtx) -> Result<(), ExecError> {
    chunk_loop(Kernel::Avx2, cx)
}

/// Executes whole chunks of `info`'s loop across f64 lanes.
///
/// `t_start`/`t_stop` override the loop range so a parallel tile can run
/// its slice; the sequential VM passes `info.start`/`info.stop`. `regs`
/// supplies broadcast scalars and receives the last lane's values of
/// every lane register afterwards, exactly as the scalar loop would have
/// left them. Returns `iters == 0` (and touches nothing) when the
/// effective width is < 2 or the range has fewer iterations than lanes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_lanes<M: LaneMem>(
    code: &Code,
    info: &SimdInfo,
    want: usize,
    t_start: i64,
    t_stop: i64,
    regs: &mut [f64],
    idx: &[i64; MAX_RANK],
    mem: &mut M,
    lane: &mut Vec<[f64; MAX_LANES]>,
    deadline: Option<Instant>,
) -> Result<LaneRun, ExecError> {
    let l = want.min(info.lanes as usize).min(MAX_LANES);
    let extent = (t_stop - t_start) / info.step;
    let mut run = LaneRun::default();
    if l < 2 || extent < l as i64 {
        return Ok(run);
    }
    let chunks = extent / l as i64;
    let dim = info.dim as usize;
    let step = info.step;
    let n_lane = info.lane_regs.len();

    // Lower the body once per run: resolve operands to lane slots,
    // broadcast loop-invariant scalars, bind memory accesses to raw
    // pointer streams (bounds-checked for the whole run up front), and
    // hoist the counter arithmetic out of the loop entirely.
    let mut ops: Vec<ChunkOp> = Vec::with_capacity(info.body.len());
    let mut streams: Vec<MemStream> = Vec::new();
    let mut bcast: Vec<f64> = Vec::new();
    let mut slots: HashMap<u64, u16> = HashMap::new();
    let (mut n_loads, mut n_stores, mut n_points, mut n_flops) = (0u64, 0u64, 0u64, 0u64);
    const IDX_KEY: u64 = 1 << 32;
    for op in &info.body {
        match op {
            LaneOp::Load { dst, acc } => {
                let mi = stream(
                    &mut streams,
                    mem,
                    code,
                    *acc,
                    idx,
                    dim,
                    t_start,
                    step,
                    l,
                    chunks,
                )?;
                ops.push(ChunkOp::Load { dst: *dst, mem: mi });
                n_loads += 1;
            }
            LaneOp::Store { acc, src } => {
                let s = src_slot(&mut slots, &mut bcast, n_lane, regs, *src);
                let mi = stream(
                    &mut streams,
                    mem,
                    code,
                    *acc,
                    idx,
                    dim,
                    t_start,
                    step,
                    l,
                    chunks,
                )?;
                ops.push(ChunkOp::Store { src: s, mem: mi });
                n_stores += 1;
            }
            LaneOp::Bin { op, dst, a, b } => {
                let a = src_slot(&mut slots, &mut bcast, n_lane, regs, *a);
                let b = src_slot(&mut slots, &mut bcast, n_lane, regs, *b);
                ops.push(ChunkOp::Bin {
                    op: *op,
                    dst: *dst,
                    a,
                    b,
                });
            }
            LaneOp::Neg { dst, src } => {
                let s = src_slot(&mut slots, &mut bcast, n_lane, regs, *src);
                ops.push(ChunkOp::Neg { dst: *dst, src: s });
            }
            LaneOp::Mov { dst, src } => {
                let s = src_slot(&mut slots, &mut bcast, n_lane, regs, *src);
                ops.push(ChunkOp::Mov { dst: *dst, src: s });
            }
            LaneOp::IdxF { dst, d } => {
                if *d as usize == dim {
                    ops.push(ChunkOp::IdxSeq { dst: *dst });
                } else {
                    let s = bslot(
                        &mut slots,
                        &mut bcast,
                        n_lane,
                        IDX_KEY | *d as u64,
                        idx[*d as usize] as f64,
                    );
                    ops.push(ChunkOp::Mov { dst: *dst, src: s });
                }
            }
            LaneOp::Call { intr, dst, args } => {
                let mut av = [0u16; MAX_CALL_ARGS];
                for (i, &a) in args.iter().enumerate() {
                    av[i] = src_slot(&mut slots, &mut bcast, n_lane, regs, a);
                }
                ops.push(ChunkOp::Call {
                    intr: *intr,
                    dst: *dst,
                    n: args.len() as u8,
                    args: av,
                });
            }
            LaneOp::Tick { flops } => {
                n_points += 1;
                n_flops += *flops as u64;
            }
        }
    }

    lane.clear();
    lane.resize(n_lane + bcast.len(), [0.0; MAX_LANES]);
    for (i, &v) in bcast.iter().enumerate() {
        lane[n_lane + i] = [v; MAX_LANES];
    }

    let mut cx = ChunkCtx {
        ops: &ops,
        streams: &mut streams,
        lane: lane.as_mut_slice(),
        l,
        chunks,
        base0: t_start,
        lstep: l as i64 * step,
        step,
        deadline,
    };
    run_chunks(kernel(), &mut cx)?;

    // The scalar epilogue and all post-loop code must see exactly the
    // registers a scalar run of these iterations would have left: the
    // last executed iteration's values, i.e. the last lane of the last
    // chunk.
    for (slot, &r) in info.lane_regs.iter().enumerate() {
        regs[r as usize] = lane[slot][l - 1];
    }
    run.iters = chunks * l as i64;
    let per = chunks as u64 * l as u64;
    run.loads = n_loads * per;
    run.stores = n_stores * per;
    run.points = n_points * per;
    run.flops = n_flops * per;
    run.ops = run.iters as u64 * (info.exit - info.head) as u64;
    Ok(run)
}

/// The arithmetic kernel the lane loop dispatches to, chosen once per
/// process. Portable unrolled loops are the default; on x86-64 the
/// SSE2/AVX2 paths are selected by runtime feature detection. All three
/// compute IEEE-754 binary64 add/sub/mul/div, so the choice never
/// changes a bit of the result.
#[derive(Clone, Copy, Debug)]
enum Kernel {
    Portable,
    #[cfg(target_arch = "x86_64")]
    Sse2,
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

fn kernel() -> Kernel {
    static KERN: std::sync::OnceLock<Kernel> = std::sync::OnceLock::new();
    *KERN.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return Kernel::Avx2;
            }
            if std::arch::is_x86_feature_detected!("sse2") {
                return Kernel::Sse2;
            }
        }
        Kernel::Portable
    })
}

/// One lane-wide binary op. Arithmetic goes through the detected kernel;
/// comparisons (rare in loop bodies) evaluate per lane via the
/// interpreter's own `binop`, so semantics stay shared. Operates on all
/// [`MAX_LANES`] slots — lanes past the active width compute garbage
/// values that are never read, and f64 arithmetic never traps.
#[inline(always)]
fn lane_bin(
    kern: Kernel,
    op: BinOp,
    a: &[f64; MAX_LANES],
    b: &[f64; MAX_LANES],
) -> [f64; MAX_LANES] {
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => match kern {
            Kernel::Portable => arith_portable(op, a, b),
            // SAFETY: `kernel()` only selects these after
            // `is_x86_feature_detected!` confirmed the feature.
            #[cfg(target_arch = "x86_64")]
            Kernel::Sse2 => unsafe { arith_sse2(op, a, b) },
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => unsafe { arith_avx2(op, a, b) },
        },
        _ => {
            let mut out = [0.0f64; MAX_LANES];
            for m in 0..MAX_LANES {
                out[m] = binop(op, a[m], b[m]);
            }
            out
        }
    }
}

#[inline(always)]
fn arith_portable(op: BinOp, a: &[f64; MAX_LANES], b: &[f64; MAX_LANES]) -> [f64; MAX_LANES] {
    let mut out = [0.0f64; MAX_LANES];
    match op {
        BinOp::Add => {
            for m in 0..MAX_LANES {
                out[m] = a[m] + b[m];
            }
        }
        BinOp::Sub => {
            for m in 0..MAX_LANES {
                out[m] = a[m] - b[m];
            }
        }
        BinOp::Mul => {
            for m in 0..MAX_LANES {
                out[m] = a[m] * b[m];
            }
        }
        BinOp::Div => {
            for m in 0..MAX_LANES {
                out[m] = a[m] / b[m];
            }
        }
        _ => unreachable!("lane_bin routes comparisons through binop"),
    }
    out
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn arith_sse2(op: BinOp, a: &[f64; MAX_LANES], b: &[f64; MAX_LANES]) -> [f64; MAX_LANES] {
    use std::arch::x86_64::*;
    let mut out = [0.0f64; MAX_LANES];
    for h in 0..MAX_LANES / 2 {
        let x = _mm_loadu_pd(a.as_ptr().add(2 * h));
        let y = _mm_loadu_pd(b.as_ptr().add(2 * h));
        let z = match op {
            BinOp::Add => _mm_add_pd(x, y),
            BinOp::Sub => _mm_sub_pd(x, y),
            BinOp::Mul => _mm_mul_pd(x, y),
            BinOp::Div => _mm_div_pd(x, y),
            _ => unreachable!("lane_bin routes comparisons through binop"),
        };
        _mm_storeu_pd(out.as_mut_ptr().add(2 * h), z);
    }
    out
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn arith_avx2(op: BinOp, a: &[f64; MAX_LANES], b: &[f64; MAX_LANES]) -> [f64; MAX_LANES] {
    use std::arch::x86_64::*;
    let mut out = [0.0f64; MAX_LANES];
    for h in 0..MAX_LANES / 4 {
        let x = _mm256_loadu_pd(a.as_ptr().add(4 * h));
        let y = _mm256_loadu_pd(b.as_ptr().add(4 * h));
        let z = match op {
            BinOp::Add => _mm256_add_pd(x, y),
            BinOp::Sub => _mm256_sub_pd(x, y),
            BinOp::Mul => _mm256_mul_pd(x, y),
            BinOp::Div => _mm256_div_pd(x, y),
            _ => unreachable!("lane_bin routes comparisons through binop"),
        };
        _mm256_storeu_pd(out.as_mut_ptr().add(4 * h), z);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode;
    use crate::ir::{EExpr, ElemRef, ElemStmt, LStmt, LoopNest, ScalarProgram};
    use zlang::ast::ReduceOp;
    use zlang::ir::{ArrayId, ConfigBinding, Offset, RegionId, ScalarId};

    fn prog() -> zlang::ir::Program {
        zlang::compile(
            "program t; config n : int = 16; region R = [1..n]; \
             region S = [3..n]; var A, B, C : [R] float; var s : float; \
             begin end",
        )
        .unwrap()
    }

    fn load(a: u32) -> EExpr {
        EExpr::Load(ArrayId(a), Offset(vec![0]))
    }

    /// `C[i] = A[i] * B[i] + A[i]` over R — the fused element-wise shape
    /// the peephole and the vectorizer both target.
    fn simple_fill() -> ScalarProgram {
        ScalarProgram {
            program: prog(),
            stmts: vec![LStmt::Nest(LoopNest {
                region: RegionId(0),
                structure: vec![1],
                body: vec![ElemStmt {
                    target: ElemRef::Array(ArrayId(2), Offset(vec![0])),
                    rhs: EExpr::Binary(
                        BinOp::Add,
                        Box::new(EExpr::Binary(
                            BinOp::Mul,
                            Box::new(load(0)),
                            Box::new(load(1)),
                        )),
                        Box::new(load(0)),
                    ),
                }],
                cluster: 0,
                temps: 0,
            })],
        }
    }

    fn compiled(sp: &ScalarProgram) -> Code {
        bytecode::compile(sp, &ConfigBinding::defaults(&sp.program)).unwrap()
    }

    #[test]
    fn bundling_shrinks_the_op_stream() {
        let mut code = compiled(&simple_fill());
        let before = code.ops.len();
        bundle(&mut code);
        assert!(
            code.ops.len() < before,
            "expected superinstructions to shrink {before} ops, got {}",
            code.ops.len()
        );
        assert!(code
            .ops
            .iter()
            .any(|op| matches!(op, Op::LdLdBin { .. } | Op::LdBin { .. } | Op::BinSt { .. })));
    }

    #[test]
    fn superfuse_annotates_an_elementwise_loop() {
        let mut code = compiled(&simple_fill());
        superfuse(&mut code);
        assert_eq!(code.simds.len(), 1, "one vectorizable innermost loop");
        let info = &code.simds[0];
        assert_eq!(info.lanes as usize, MAX_LANES, "no aliasing: full width");
        assert!(matches!(
            code.ops[info.head as usize - 2],
            Op::SimdBegin { simd: 0 }
        ));
        assert!(matches!(
            code.ops[info.head as usize - 1],
            Op::SetIdx { .. }
        ));
        assert!(matches!(
            code.ops[info.exit as usize - 1],
            Op::IdxStep { .. }
        ));
    }

    #[test]
    fn alias_distance_caps_the_lane_count() {
        // A[i] = A[i-2] + 1 over S=[3..n]: iteration i reads what i-2
        // wrote, so only 2 lanes can run op-major without reading a
        // stale value.
        let sp = ScalarProgram {
            program: prog(),
            stmts: vec![LStmt::Nest(LoopNest {
                region: RegionId(1),
                structure: vec![1],
                body: vec![ElemStmt {
                    target: ElemRef::Array(ArrayId(0), Offset(vec![0])),
                    rhs: EExpr::Binary(
                        BinOp::Add,
                        Box::new(EExpr::Load(ArrayId(0), Offset(vec![-2]))),
                        Box::new(EExpr::Const(1.0)),
                    ),
                }],
                cluster: 0,
                temps: 0,
            })],
        };
        let mut code = compiled(&sp);
        assert!(
            code.accesses.iter().all(|a| a.check.is_none()),
            "the stencil accesses should be check-free"
        );
        superfuse(&mut code);
        assert_eq!(code.simds.len(), 1);
        assert_eq!(code.simds[0].lanes, 2, "distance-2 dependence");
    }

    #[test]
    fn reductions_are_never_annotated() {
        let sp = ScalarProgram {
            program: prog(),
            stmts: vec![LStmt::ReduceNest {
                lhs: ScalarId(0),
                op: ReduceOp::Sum,
                region: RegionId(0),
                structure: vec![1],
                rhs: load(0),
            }],
        };
        let mut code = compiled(&sp);
        superfuse(&mut code);
        assert!(
            code.simds.is_empty(),
            "reduction bodies carry a register dependence"
        );
    }

    #[test]
    fn superfused_scalar_run_is_bit_identical() {
        use crate::interp::NoopObserver;
        use crate::{Executor, Vm};
        let sp = simple_fill();
        let binding = ConfigBinding::defaults(&sp.program);
        let mut plain = Vm::new(&sp, binding.clone()).unwrap();
        let op = plain.execute(&mut NoopObserver).unwrap();
        let mut fused = Vm::new_superfused(&sp, binding).unwrap();
        let of = fused.execute(&mut NoopObserver).unwrap();
        assert_eq!(op, of, "scalar dispatch over superinstructions");
        assert_eq!(plain.array(ArrayId(2)), fused.array(ArrayId(2)));
    }
}
