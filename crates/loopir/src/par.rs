//! Parallel tiled execution of partitionable loop ladders.
//!
//! The bytecode compiler marks a nest's ladder with
//! [`Op::ParBegin`](crate::bytecode::Op) when it can prove the iteration
//! points independent along one dimension (see
//! [`ParInfo`](crate::bytecode::ParInfo) for the exact obligations). When
//! the [`Vm`](crate::Vm) runs with [`Vm::set_threads`](crate::Vm) enabled
//! and a passive observer, [`run_ladder`] splits that dimension's range
//! into contiguous tiles and executes each tile as an independent task on
//! a persistent `std::thread` pool.
//!
//! Everything about the fan-out is deterministic except which worker runs
//! which tile — and nothing observable depends on that:
//!
//! * the tile decomposition is a pure function of the static bounds and
//!   the configured thread count;
//! * each tile executes the *same shared bytecode* over its sub-range
//!   (only the partitioned dimension's `SetIdx` start and `IdxStep` stop
//!   are overridden), with a private register frame and index vector;
//! * writes land in disjoint slices of the shared arrays (the compiler's
//!   proof), so the array contents equal the sequential run's bit for bit;
//! * per-tile counters return as [`TileStats`] keyed by tile index and
//!   merge in that order ([`RunOutcome::merge`](crate::RunOutcome::merge));
//!   errors resolve to the lowest-indexed failing tile.
//!
//! Reduction nests never reach this module: IEEE-754 addition is not
//! associative, so any split of a `+<<` fold would change result bits. The
//! engines contract bit-identity across thread counts, and that contract
//! wins — reductions stay sequential on the coordinator.

use crate::bytecode::{Code, Op, ParInfo, MAX_LANES, MAX_RANK};
use crate::exec::TileStats;
use crate::interp::{binop, ExecError};
use crate::simd::{self, LaneMem};
use crate::vm::{resolve, VmArray};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Instant;

/// A persistent pool of `threads - 1` workers plus the coordinating
/// thread. Workers park on a condvar between batches; submitting a batch
/// bumps a generation counter and wakes them. Work *within* a batch is
/// stolen tile-by-tile from a shared atomic cursor, so an uneven tile
/// (or a descheduled worker) never idles the rest of the pool.
pub(crate) struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<thread::JoinHandle<()>>,
    threads: usize,
}

struct PoolShared {
    slot: Mutex<JobSlot>,
    cv: Condvar,
}

#[derive(Default)]
struct JobSlot {
    /// Bumped once per published batch; workers compare against the last
    /// generation they saw, so a worker that slept through a whole batch
    /// simply skips it.
    gen: u64,
    batch: Option<Arc<Batch>>,
    shutdown: bool,
}

impl Pool {
    pub(crate) fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            slot: Mutex::new(JobSlot::default()),
            cv: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|_| {
                let sh = Arc::clone(&shared);
                thread::spawn(move || worker(sh))
            })
            .collect();
        Pool {
            shared,
            workers,
            threads,
        }
    }

    pub(crate) fn threads(&self) -> usize {
        self.threads
    }

    fn submit(&self, batch: &Arc<Batch>) {
        if self.workers.is_empty() {
            return; // the coordinator runs every tile itself
        }
        let mut slot = self.shared.slot.lock().unwrap();
        slot.gen += 1;
        slot.batch = Some(Arc::clone(batch));
        drop(slot);
        self.shared.cv.notify_all();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().unwrap();
            slot.shutdown = true;
        }
        self.shared.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker(sh: Arc<PoolShared>) {
    let mut seen = 0u64;
    loop {
        let batch = {
            let mut slot = sh.slot.lock().unwrap();
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.gen != seen {
                    seen = slot.gen;
                    break slot
                        .batch
                        .clone()
                        .expect("published generation has a batch");
                }
                slot = sh.cv.wait(slot).unwrap();
            }
        };
        batch.run_tiles();
    }
}

/// A borrowed view of one allocated array's buffer, shared by every tile
/// of a batch through raw pointers.
struct ArrayView {
    ptr: *mut f64,
    len: usize,
}

struct TileRun {
    stats: TileStats,
    /// The index vector as the tile's ladder left it; the last tile's copy
    /// equals the sequential run's post-ladder state.
    final_idx: [i64; MAX_RANK],
}

/// One published fan-out: the shared program, the frozen pre-ladder run
/// state, and the tile work list.
struct Batch {
    code: Arc<Code>,
    info: ParInfo,
    /// Per tile, the partitioned dimension's `(start, stop)` override, in
    /// iteration order (`stop` is one `step` past the tile's last
    /// iterate), concatenating to exactly the sequential range.
    tiles: Vec<(i64, i64)>,
    /// Snapshot of the register frame at the `ParBegin`.
    frame: Vec<f64>,
    /// Snapshot of the index vector at the `ParBegin`.
    idx: [i64; MAX_RANK],
    views: Vec<ArrayView>,
    deadline: Option<Instant>,
    batch_id: u32,
    /// Lane width for `Op::SimdBegin` loops inside the ladder (`< 2`
    /// keeps tiles scalar). Only verified superfused programs fan out
    /// with lanes enabled, mirroring the sequential VM's gate.
    lanes: usize,
    /// The work-stealing cursor: each claim takes the next unstarted tile.
    next: AtomicUsize,
    state: Mutex<BatchState>,
    done_cv: Condvar,
}

struct BatchState {
    slots: Vec<Option<Result<TileRun, ExecError>>>,
    done: usize,
}

// SAFETY: `Batch` is shared across threads only through `run_tiles`, whose
// element accesses go through the raw `ArrayView` pointers. The compiler's
// `ParInfo` obligations make those accesses race-free: every written array
// varies along the partitioned dimension and is touched at a single
// constant offset along it, so each tile reads and writes only its own
// disjoint slice of each written array; arrays that are only read are
// shared read-only. The pointers stay valid for the whole fan-out because
// the coordinator borrows the arrays mutably for the duration of
// `run_ladder`, which does not return until every tile has completed (and
// workers touch no view after their last tile). All remaining fields are
// either immutable after publication or synchronized (`Mutex`, atomics).
unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

impl Batch {
    fn run_tiles(&self) {
        loop {
            let t = self.next.fetch_add(1, Ordering::Relaxed);
            if t >= self.tiles.len() {
                return;
            }
            let r = run_tile(self, t);
            let mut st = self.state.lock().unwrap();
            st.slots[t] = Some(r);
            st.done += 1;
            if st.done == self.tiles.len() {
                self.done_cv.notify_all();
            }
        }
    }
}

/// Splits the partitioned dimension's `extent` iterates into at most
/// `threads * 4` contiguous tiles (never smaller than one iterate). The
/// 4x over-decomposition lets the stealing cursor rebalance when tiles
/// run unevenly; the decomposition itself depends only on static bounds
/// and the configured thread count, never on scheduling.
fn make_tiles(info: ParInfo, threads: usize) -> Vec<(i64, i64)> {
    let extent = info.extent as usize;
    let want = (threads * 4).clamp(1, extent);
    let base = extent / want;
    let rem = extent % want;
    let mut tiles = Vec::with_capacity(want);
    let mut off = 0i64;
    for k in 0..want {
        let size = (base + usize::from(k < rem)) as i64;
        let start = info.start + info.step * off;
        tiles.push((start, start + info.step * size));
        off += size;
    }
    tiles
}

/// Executes one marked ladder as parallel tiles and waits for all of them.
///
/// Appends each tile's counters to `out` in tile order and returns the
/// sequential run's post-ladder index vector. On failure returns the
/// error of the lowest-indexed failing tile (which, when the partitioned
/// dimension is outermost, is also the first error the sequential run
/// would have hit).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_ladder(
    pool: &Pool,
    code: &Arc<Code>,
    info: ParInfo,
    frame: &[f64],
    idx: &[i64; MAX_RANK],
    arrays: &mut [Option<VmArray>],
    deadline: Option<Instant>,
    batch_id: u32,
    lanes: usize,
    out: &mut Vec<TileStats>,
) -> Result<[i64; MAX_RANK], ExecError> {
    let tiles = make_tiles(info, pool.threads());
    let n = tiles.len();
    let views = arrays
        .iter_mut()
        .map(|a| match a {
            Some(arr) => ArrayView {
                ptr: arr.data.as_mut_ptr(),
                len: arr.data.len(),
            },
            None => ArrayView {
                ptr: std::ptr::NonNull::dangling().as_ptr(),
                len: 0,
            },
        })
        .collect();
    let batch = Arc::new(Batch {
        code: Arc::clone(code),
        info,
        tiles,
        frame: frame.to_vec(),
        idx: *idx,
        views,
        deadline,
        batch_id,
        lanes,
        next: AtomicUsize::new(0),
        state: Mutex::new(BatchState {
            slots: (0..n).map(|_| None).collect(),
            done: 0,
        }),
        done_cv: Condvar::new(),
    });
    pool.submit(&batch);
    batch.run_tiles(); // the coordinator is a worker too
    let mut st = batch.state.lock().unwrap();
    while st.done < n {
        st = batch.done_cv.wait(st).unwrap();
    }
    let mut final_idx = *idx;
    for slot in st.slots.iter_mut() {
        match slot.take().expect("completed batch has every slot filled") {
            Ok(run) => {
                final_idx = run.final_idx;
                out.push(run.stats);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(final_idx)
}

/// The tile task: re-executes the shared ladder bytecode `[entry, exit)`
/// over one tile's sub-range, with a private frame and index vector.
///
/// Only the straight-line subset of the ISA can appear inside a ladder
/// (the compiler puts allocs, counters, and nest bookkeeping before the
/// `ParBegin`); anything else is a malformed-bytecode trap. Element
/// accesses are always length-checked against the view — unlike the
/// sequential unchecked fast path this costs one predictable branch, and
/// it keeps the raw-pointer path sound even for hand-built bytecode.
fn run_tile(b: &Batch, ti: usize) -> Result<TileRun, ExecError> {
    let code = &*b.code;
    let ops = &code.ops[..];
    let pdim = b.info.dim as usize;
    let (t_start, t_stop) = b.tiles[ti];
    let mut regs = b.frame.clone();
    let mut idx = b.idx;
    let mut pc = b.info.entry as usize;
    let exit = b.info.exit as usize;
    let (mut loads, mut stores, mut flops, mut points) = (0u64, 0u64, 0u64, 0u64);
    let mut ops_done = 0u64;
    let mut lane_scratch: Vec<[f64; MAX_LANES]> = Vec::new();
    // Constituent element load/store of a superinstruction — the same
    // length-checked view semantics as `Op::Load`/`Op::Store` below.
    macro_rules! tile_load {
        ($acc:expr, $dst:expr) => {{
            let (ai, flat) = resolve(code, &idx, $acc)?;
            let v = &b.views[ai];
            if flat >= v.len {
                return Err(tile_oob(code, ai));
            }
            loads += 1;
            // SAFETY: as for `Op::Load` — length-checked, and tiles only
            // write disjoint slices.
            regs[$dst as usize] = unsafe { *v.ptr.add(flat) };
        }};
    }
    macro_rules! tile_store {
        ($acc:expr, $src:expr) => {{
            let val = regs[$src as usize];
            let (ai, flat) = resolve(code, &idx, $acc)?;
            let v = &b.views[ai];
            if flat >= v.len {
                return Err(tile_oob(code, ai));
            }
            // SAFETY: as for `Op::Store`.
            unsafe { *v.ptr.add(flat) = val };
            stores += 1;
        }};
    }
    while pc != exit {
        let op = ops[pc];
        pc += 1;
        ops_done += 1;
        if ops_done & 0x1FFF == 0 {
            if let Some(d) = b.deadline {
                if Instant::now() >= d {
                    return Err(ExecError::deadline());
                }
            }
        }
        match op {
            Op::Add { dst, a, b } => {
                regs[dst as usize] = regs[a as usize] + regs[b as usize];
            }
            Op::Sub { dst, a, b } => {
                regs[dst as usize] = regs[a as usize] - regs[b as usize];
            }
            Op::Mul { dst, a, b } => {
                regs[dst as usize] = regs[a as usize] * regs[b as usize];
            }
            Op::Div { dst, a, b } => {
                regs[dst as usize] = regs[a as usize] / regs[b as usize];
            }
            Op::Bin { op, dst, a, b } => {
                regs[dst as usize] = binop(op, regs[a as usize], regs[b as usize]);
            }
            Op::Neg { dst, src } => {
                regs[dst as usize] = -regs[src as usize];
            }
            Op::Mov { dst, src } => {
                regs[dst as usize] = regs[src as usize];
            }
            Op::Call { intr, dst, base, n } => {
                let base = base as usize;
                regs[dst as usize] = intr.eval(&regs[base..base + n as usize]);
            }
            Op::IdxF { dst, d } => {
                regs[dst as usize] = idx[d as usize] as f64;
            }
            Op::Load { dst, acc } => {
                let (ai, flat) = resolve(code, &idx, acc)?;
                let v = &b.views[ai];
                if flat >= v.len {
                    return Err(tile_oob(code, ai));
                }
                loads += 1;
                // SAFETY: `flat < len` was just checked; concurrent tiles
                // only write disjoint slices (see the Send/Sync note on
                // `Batch`), and a read of a written array stays at the
                // tile's own offset along the partitioned dimension.
                regs[dst as usize] = unsafe { *v.ptr.add(flat) };
            }
            Op::Store { acc, src } => {
                let val = regs[src as usize];
                let (ai, flat) = resolve(code, &idx, acc)?;
                let v = &b.views[ai];
                if flat >= v.len {
                    return Err(tile_oob(code, ai));
                }
                // SAFETY: as for Load; additionally this tile is the only
                // one whose index range maps onto this slice of the array.
                unsafe { *v.ptr.add(flat) = val };
                stores += 1;
            }
            Op::Tick { flops: n } => {
                points += 1;
                flops += n as u64;
            }
            Op::SetIdx { d, v } => {
                idx[d as usize] = if d as usize == pdim { t_start } else { v };
            }
            Op::IdxStep {
                d,
                step,
                stop,
                head,
            } => {
                let stop = if d as usize == pdim { t_stop } else { stop };
                let v = idx[d as usize] + step;
                idx[d as usize] = v;
                if v != stop {
                    pc = head as usize;
                }
            }
            Op::LdLdBin {
                op,
                dst,
                da,
                aa,
                db,
                ab,
            } => {
                tile_load!(aa, da);
                tile_load!(ab, db);
                regs[dst as usize] = binop(op, regs[da as usize], regs[db as usize]);
            }
            Op::LdBin {
                op,
                dst,
                dl,
                acc,
                other,
                right,
            } => {
                tile_load!(acc, dl);
                let (x, y) = if right { (other, dl) } else { (dl, other) };
                regs[dst as usize] = binop(op, regs[x as usize], regs[y as usize]);
            }
            Op::BinBin {
                op1,
                d1,
                a1,
                b1,
                op2,
                d2,
                a2,
                b2,
            } => {
                regs[d1 as usize] = binop(op1, regs[a1 as usize], regs[b1 as usize]);
                regs[d2 as usize] = binop(op2, regs[a2 as usize], regs[b2 as usize]);
            }
            Op::BinSt { op, dst, a, b, acc } => {
                regs[dst as usize] = binop(op, regs[a as usize], regs[b as usize]);
                tile_store!(acc, dst);
            }
            Op::LdSt { dst, la, sa } => {
                tile_load!(la, dst);
                tile_store!(sa, dst);
            }
            Op::SimdBegin { simd } => {
                // The simd × tiling composition: when the vectorized loop
                // is the partitioned dimension itself (1-D ladders), the
                // lane run covers this tile's sub-range; for inner loops
                // of a 2-D ladder it covers the full inner range at the
                // tile's fixed outer index.
                if b.lanes >= 2 {
                    let info = &code.simds[simd as usize];
                    let (s_start, s_stop) = if info.dim as usize == pdim {
                        (t_start, t_stop)
                    } else {
                        (info.start, info.stop)
                    };
                    let mut mem = TileMem { views: &b.views };
                    let run = simd::run_lanes(
                        code,
                        info,
                        b.lanes,
                        s_start,
                        s_stop,
                        &mut regs,
                        &idx,
                        &mut mem,
                        &mut lane_scratch,
                        b.deadline,
                    )?;
                    if run.iters > 0 {
                        loads += run.loads;
                        stores += run.stores;
                        flops += run.flops;
                        points += run.points;
                        ops_done += run.ops;
                        let extent = (s_stop - s_start) / info.step;
                        if run.iters == extent {
                            idx[info.dim as usize] = s_stop;
                            pc = info.exit as usize;
                        } else {
                            idx[info.dim as usize] = s_start + run.iters * info.step;
                            pc = info.head as usize;
                        }
                    }
                }
            }
            Op::Reduce { .. }
            | Op::NestBegin { .. }
            | Op::ReduceBegin
            | Op::ParBegin { .. }
            | Op::Alloc { .. }
            | Op::CtrInit { .. }
            | Op::CtrToIdx { .. }
            | Op::CtrToScalar { .. }
            | Op::ForInit { .. }
            | Op::CtrStep { .. }
            | Op::Jmp { .. }
            | Op::JmpIfZero { .. }
            | Op::Halt => {
                return Err(ExecError::trap(format!(
                    "{op:?} inside a parallel ladder (malformed bytecode)"
                )));
            }
        }
    }
    Ok(TileRun {
        stats: TileStats {
            batch: b.batch_id,
            tile: ti as u32,
            loads,
            stores,
            flops,
            points,
            ops: ops_done,
        },
        final_idx: idx,
    })
}

/// [`LaneMem`] over a batch's raw array views. Tiles only write disjoint
/// slices (see `Batch`), so handing the lane loop the raw base pointer is
/// as sound here as in the scalar tile path; the lane executor's
/// whole-run span check covers bounds.
struct TileMem<'a> {
    views: &'a [ArrayView],
}

impl LaneMem for TileMem<'_> {
    fn resolve(&mut self, ai: usize) -> Result<(*mut f64, usize), ExecError> {
        let v = &self.views[ai];
        Ok((v.ptr, v.len))
    }
}

#[cold]
fn tile_oob(code: &Code, ai: usize) -> ExecError {
    ExecError::trap(format!(
        "array `{}` accessed outside its allocation in a parallel tile \
         (malformed bytecode)",
        code.arrays[ai].name
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(start: i64, step: i64, extent: i64) -> ParInfo {
        ParInfo {
            dim: 0,
            start,
            step,
            extent,
            entry: 0,
            exit: 0,
        }
    }

    #[test]
    fn tiles_cover_the_range_exactly() {
        for threads in [1, 2, 3, 4, 7] {
            for extent in [1i64, 2, 5, 16, 257] {
                let up = make_tiles(info(1, 1, extent), threads);
                assert!(up.len() <= (threads * 4).max(1));
                let mut at = 1i64;
                for &(start, stop) in &up {
                    assert_eq!(start, at, "threads={threads} extent={extent}");
                    assert!(stop > start);
                    at = stop;
                }
                assert_eq!(at, 1 + extent);

                let down = make_tiles(info(extent, -1, extent), threads);
                let mut at = extent;
                for &(start, stop) in &down {
                    assert_eq!(start, at);
                    assert!(stop < start);
                    at = stop;
                }
                assert_eq!(at, 0);
            }
        }
    }

    #[test]
    fn tile_decomposition_is_deterministic() {
        let a = make_tiles(info(0, 1, 100), 4);
        let b = make_tiles(info(0, 1, 100), 4);
        assert_eq!(a, b);
        // and balanced: sizes differ by at most one iterate
        let sizes: Vec<i64> = a.iter().map(|&(s, e)| e - s).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1);
    }
}
