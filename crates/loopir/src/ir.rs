//! The scalarized loop-nest IR data structures.

use zlang::ast::{BinOp, ReduceOp, UnOp};
use zlang::ir::{ArrayId, ConfigId, Intrinsic, Offset, RegionId, ScalarExpr, ScalarId};

/// Index of a loop-local scalar introduced by array contraction.
///
/// Each contracted array definition becomes one temp; temps are local to the
/// loop nest that computes them (the paper's Definition 6 guarantees all
/// references land in one nest with null distance vectors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TempId(pub u32);

/// A reference appearing on the left-hand side of an element statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ElemRef {
    /// An array element at a constant offset from the loop index.
    Array(ArrayId, Offset),
    /// A contracted-array scalar.
    Temp(TempId),
    /// A reduction accumulation into a program scalar: at each iteration
    /// point the RHS is combined into the scalar with the operator.
    /// The scalar must be initialized to the operator's identity before the
    /// nest (the scalarizer emits that assignment).
    Reduce(ScalarId, ReduceOp),
}

/// An element-wise expression evaluated at each iteration point.
#[derive(Debug, Clone, PartialEq)]
pub enum EExpr {
    /// Array element load at a constant offset from the loop index.
    Load(ArrayId, Offset),
    /// A contracted-array scalar.
    Temp(TempId),
    /// A program scalar variable.
    ScalarRef(ScalarId),
    /// A config variable.
    ConfigRef(ConfigId),
    /// A literal.
    Const(f64),
    /// The loop index along array dimension `d` (0-based), as a float.
    Index(u8),
    /// Unary operation.
    Unary(UnOp, Box<EExpr>),
    /// Binary operation.
    Binary(BinOp, Box<EExpr>, Box<EExpr>),
    /// Intrinsic call.
    Call(Intrinsic, Vec<EExpr>),
}

impl EExpr {
    /// Visits every array load in the expression.
    pub fn for_each_load(&self, f: &mut impl FnMut(ArrayId, &Offset)) {
        match self {
            EExpr::Load(a, off) => f(*a, off),
            EExpr::Unary(_, e) => e.for_each_load(f),
            EExpr::Binary(_, l, r) => {
                l.for_each_load(f);
                r.for_each_load(f);
            }
            EExpr::Call(_, args) => {
                for a in args {
                    a.for_each_load(f);
                }
            }
            _ => {}
        }
    }

    /// Counts floating-point operations per evaluation.
    pub fn flops(&self) -> u64 {
        match self {
            EExpr::Unary(_, e) => 1 + e.flops(),
            EExpr::Binary(_, l, r) => 1 + l.flops() + r.flops(),
            EExpr::Call(_, args) => 1 + args.iter().map(|a| a.flops()).sum::<u64>(),
            _ => 0,
        }
    }
}

/// One statement inside a loop nest body, executed per iteration point.
#[derive(Debug, Clone, PartialEq)]
pub struct ElemStmt {
    /// Assignment target.
    pub target: ElemRef,
    /// Right-hand side.
    pub rhs: EExpr,
}

/// A scalarized loop nest implementing one fusible cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopNest {
    /// The iteration region.
    pub region: RegionId,
    /// The loop structure vector `p` (Definition 4 of the paper): entry `i`
    /// is the 1-based array dimension the `i`-th loop (outermost first)
    /// iterates over, negated for decreasing iteration. Always a signed
    /// permutation of `1..=rank`.
    pub structure: Vec<i8>,
    /// Straight-line element statements (intra-cluster topological order).
    pub body: Vec<ElemStmt>,
    /// Provenance: index of the fusible cluster this nest implements.
    pub cluster: usize,
    /// Number of loop-local temps used by `body` (temp ids are dense,
    /// `0..temps`).
    pub temps: u32,
}

impl LoopNest {
    /// All `(array, offset)` loads performed by the nest body.
    pub fn loads(&self) -> Vec<(ArrayId, Offset)> {
        let mut out = Vec::new();
        for s in &self.body {
            s.rhs
                .for_each_load(&mut |a, off| out.push((a, off.clone())));
        }
        out
    }

    /// All `(array, offset)` stores performed by the nest body.
    pub fn stores(&self) -> Vec<(ArrayId, Offset)> {
        self.body
            .iter()
            .filter_map(|s| match &s.target {
                ElemRef::Array(a, off) => Some((*a, off.clone())),
                ElemRef::Temp(_) | ElemRef::Reduce(..) => None,
            })
            .collect()
    }
}

/// A statement in the scalarized program.
#[derive(Debug, Clone, PartialEq)]
pub enum LStmt {
    /// A loop nest (one fusible cluster).
    Nest(LoopNest),
    /// A shared outer loop over one dimension of a region, produced by
    /// depth-1 *partial fusion* for dimension contraction: the body's
    /// nests iterate the remaining dimensions with this dimension's index
    /// bound by the enclosing loop.
    Outer {
        /// The iteration region (shared with the body's nests).
        region: RegionId,
        /// The dimension (0-based) this loop iterates.
        dim: u8,
        /// Iterate high-to-low when true.
        reverse: bool,
        /// Inner statements; their nests' `structure` must omit `dim`.
        body: Vec<LStmt>,
    },
    /// A scalar assignment.
    Scalar { lhs: ScalarId, rhs: ScalarExpr },
    /// A reduction loop accumulating into a scalar.
    ReduceNest {
        lhs: ScalarId,
        op: ReduceOp,
        region: RegionId,
        structure: Vec<i8>,
        rhs: EExpr,
    },
    /// A counted scalar loop.
    For {
        var: ScalarId,
        lo: ScalarExpr,
        hi: ScalarExpr,
        down: bool,
        body: Vec<LStmt>,
    },
    /// A conditional.
    If {
        cond: ScalarExpr,
        then_body: Vec<LStmt>,
        else_body: Vec<LStmt>,
    },
}

/// A scalarized program: the original program's declarations plus a
/// statement list of loop nests and scalar control flow.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarProgram {
    /// The source-level program (declarations are shared; its body is *not*
    /// used for execution — `stmts` is).
    pub program: zlang::ir::Program,
    /// The scalarized statement list.
    pub stmts: Vec<LStmt>,
}

impl ScalarProgram {
    /// The set of arrays that are actually referenced by the scalarized
    /// code (contracted arrays disappear and are never allocated).
    pub fn live_arrays(&self) -> Vec<ArrayId> {
        let mut seen = vec![false; self.program.arrays.len()];
        fn walk(stmts: &[LStmt], seen: &mut [bool]) {
            for s in stmts {
                match s {
                    LStmt::Nest(n) => {
                        for (a, _) in n.loads() {
                            seen[a.0 as usize] = true;
                        }
                        for (a, _) in n.stores() {
                            seen[a.0 as usize] = true;
                        }
                    }
                    LStmt::ReduceNest { rhs, .. } => {
                        rhs.for_each_load(&mut |a, _| seen[a.0 as usize] = true);
                    }
                    LStmt::For { body, .. } | LStmt::Outer { body, .. } => walk(body, seen),
                    LStmt::If {
                        then_body,
                        else_body,
                        ..
                    } => {
                        walk(then_body, seen);
                        walk(else_body, seen);
                    }
                    LStmt::Scalar { .. } => {}
                }
            }
        }
        walk(&self.stmts, &mut seen);
        seen.iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| ArrayId(i as u32))
            .collect()
    }

    /// Total loop nests in the program (recursively).
    pub fn nest_count(&self) -> usize {
        fn walk(stmts: &[LStmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    LStmt::Nest(_) | LStmt::ReduceNest { .. } => 1,
                    LStmt::For { body, .. } | LStmt::Outer { body, .. } => walk(body),
                    LStmt::If {
                        then_body,
                        else_body,
                        ..
                    } => walk(then_body) + walk(else_body),
                    LStmt::Scalar { .. } => 0,
                })
                .sum()
        }
        walk(&self.stmts)
    }
}

/// Returns the identity loop structure vector for a rank: `[1, 2, ..., n]`
/// (outer loop over dimension 1, all increasing — row-major order).
pub fn identity_structure(rank: usize) -> Vec<i8> {
    (1..=rank as i8).collect()
}

/// Validates that `p` is a signed permutation of `1..=rank`.
pub fn is_valid_structure(p: &[i8], rank: usize) -> bool {
    if p.len() != rank {
        return false;
    }
    let mut seen = vec![false; rank];
    for &e in p {
        let d = e.unsigned_abs() as usize;
        if e == 0 || d > rank || seen[d - 1] {
            return false;
        }
        seen[d - 1] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_structure_is_valid() {
        for rank in 1..=4 {
            assert!(is_valid_structure(&identity_structure(rank), rank));
        }
    }

    #[test]
    fn invalid_structures_rejected() {
        assert!(!is_valid_structure(&[1, 1], 2));
        assert!(!is_valid_structure(&[0, 2], 2));
        assert!(!is_valid_structure(&[3, 1], 2));
        assert!(!is_valid_structure(&[1], 2));
        assert!(is_valid_structure(&[-2, 1], 2));
    }

    #[test]
    fn eexpr_flops_and_loads() {
        let a = ArrayId(0);
        let e = EExpr::Binary(
            BinOp::Mul,
            Box::new(EExpr::Load(a, Offset(vec![0]))),
            Box::new(EExpr::Call(
                Intrinsic::Sqrt,
                vec![EExpr::Load(a, Offset(vec![1]))],
            )),
        );
        assert_eq!(e.flops(), 2);
        let mut n = 0;
        e.for_each_load(&mut |_, _| n += 1);
        assert_eq!(n, 2);
    }
}
