//! Pseudo-C pretty printer for the scalarized IR.
//!
//! Produces the loop-nest view the paper shows as Fortran 77 output
//! (Figure 2(c)); used by the examples and the compiler-explorer tooling to
//! make fusion and contraction decisions visible.

use crate::ir::{EExpr, ElemRef, LStmt, LoopNest, ScalarProgram};
use std::fmt::Write;
use zlang::ast::{BinOp, ReduceOp, UnOp};
use zlang::ir::{Offset, Program};

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
    }
}

fn subscript(off: &Offset) -> String {
    off.0
        .iter()
        .enumerate()
        .map(|(d, &v)| {
            let base = format!("i{}", d + 1);
            match v.cmp(&0) {
                std::cmp::Ordering::Equal => base,
                std::cmp::Ordering::Greater => format!("{base}+{v}"),
                std::cmp::Ordering::Less => format!("{base}{v}"),
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

fn eexpr(p: &Program, e: &EExpr) -> String {
    match e {
        EExpr::Load(a, off) => format!("{}[{}]", p.array(*a).name, subscript(off)),
        EExpr::Temp(t) => format!("t{}", t.0),
        EExpr::ScalarRef(s) => p.scalar(*s).name.clone(),
        EExpr::ConfigRef(c) => p.configs[c.0 as usize].name.clone(),
        EExpr::Const(v) => format!("{v}"),
        EExpr::Index(d) => format!("i{}", d + 1),
        EExpr::Unary(UnOp::Neg, inner) => format!("(-{})", eexpr(p, inner)),
        EExpr::Binary(op, l, r) => {
            format!("({} {} {})", eexpr(p, l), binop_str(*op), eexpr(p, r))
        }
        EExpr::Call(i, args) => {
            let args: Vec<_> = args.iter().map(|a| eexpr(p, a)).collect();
            format!("{}({})", i.name(), args.join(", "))
        }
    }
}

fn nest(p: &Program, n: &LoopNest, indent: usize, out: &mut String) {
    let region = p.region(n.region);
    let mut pad = "  ".repeat(indent);
    for (l, &s) in n.structure.iter().enumerate() {
        let dim = s.unsigned_abs() as usize;
        let ext = &region.extents[dim - 1];
        let (lo, hi) = (lin(p, &ext.lo), lin(p, &ext.hi));
        if s > 0 {
            let _ = writeln!(out, "{pad}for i{dim} = {lo} .. {hi} {{");
        } else {
            let _ = writeln!(out, "{pad}for i{dim} = {hi} downto {lo} {{");
        }
        pad = "  ".repeat(indent + l + 1);
    }
    for stmt in &n.body {
        match &stmt.target {
            ElemRef::Array(a, off) => {
                let t = format!("{}[{}]", p.array(*a).name, subscript(off));
                let _ = writeln!(out, "{pad}{t} = {};", eexpr(p, &stmt.rhs));
            }
            ElemRef::Temp(t) => {
                let _ = writeln!(out, "{pad}t{} = {};", t.0, eexpr(p, &stmt.rhs));
            }
            ElemRef::Reduce(s, op) => {
                let name = &p.scalar(*s).name;
                let opstr = match op {
                    ReduceOp::Sum => format!("{name} += "),
                    ReduceOp::Prod => format!("{name} *= "),
                    ReduceOp::Max => format!("{name} = max({name}, "),
                    ReduceOp::Min => format!("{name} = min({name}, "),
                };
                let close = matches!(op, ReduceOp::Max | ReduceOp::Min);
                let _ = writeln!(
                    out,
                    "{pad}{opstr}{}{};",
                    eexpr(p, &stmt.rhs),
                    if close { ")" } else { "" }
                );
            }
        }
    }
    for l in (0..n.structure.len()).rev() {
        let _ = writeln!(out, "{}}}", "  ".repeat(indent + l));
    }
}

fn lin(p: &Program, e: &zlang::ir::LinExpr) -> String {
    let mut parts = Vec::new();
    if e.base != 0 || e.terms.is_empty() {
        parts.push(e.base.to_string());
    }
    for &(c, coeff) in &e.terms {
        let name = &p.configs[c.0 as usize].name;
        match coeff {
            1 => parts.push(name.clone()),
            -1 => parts.push(format!("-{name}")),
            k => parts.push(format!("{k}*{name}")),
        }
    }
    parts.join("+").replace("+-", "-")
}

fn stmt(p: &Program, s: &LStmt, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match s {
        LStmt::Nest(n) => {
            let _ = writeln!(out, "{pad}// cluster {}", n.cluster);
            nest(p, n, indent, out);
        }
        LStmt::Scalar { lhs, rhs } => {
            let _ = writeln!(
                out,
                "{pad}{} = {};",
                p.scalar(*lhs).name,
                zlang::pretty::scalar_expr(p, rhs)
            );
        }
        LStmt::ReduceNest {
            lhs,
            op,
            region,
            rhs,
            ..
        } => {
            let opname = match op {
                ReduceOp::Sum => "sum",
                ReduceOp::Prod => "prod",
                ReduceOp::Max => "max",
                ReduceOp::Min => "min",
            };
            let _ = writeln!(
                out,
                "{pad}{} = reduce_{opname} over {} of {};",
                p.scalar(*lhs).name,
                p.region(*region).name,
                eexpr(p, rhs)
            );
        }
        LStmt::Outer {
            region,
            dim,
            reverse,
            body,
        } => {
            let ext = &p.region(*region).extents[*dim as usize];
            let (lo, hi) = (lin(p, &ext.lo), lin(p, &ext.hi));
            let d = *dim as usize + 1;
            if *reverse {
                let _ = writeln!(out, "{pad}for i{d} = {hi} downto {lo} {{ // shared outer");
            } else {
                let _ = writeln!(out, "{pad}for i{d} = {lo} .. {hi} {{ // shared outer");
            }
            for s in body {
                stmt(p, s, indent + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        LStmt::For {
            var,
            lo,
            hi,
            down,
            body,
        } => {
            let _ = writeln!(
                out,
                "{pad}for {} = {} {} {} {{",
                p.scalar(*var).name,
                zlang::pretty::scalar_expr(p, lo),
                if *down { "downto" } else { ".." },
                zlang::pretty::scalar_expr(p, hi)
            );
            for s in body {
                stmt(p, s, indent + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        LStmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let _ = writeln!(out, "{pad}if ({}) {{", zlang::pretty::scalar_expr(p, cond));
            for s in then_body {
                stmt(p, s, indent + 1, out);
            }
            if !else_body.is_empty() {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in else_body {
                    stmt(p, s, indent + 1, out);
                }
            }
            let _ = writeln!(out, "{pad}}}");
        }
    }
}

/// Renders a scalarized program as pseudo-C.
pub fn print(sp: &ScalarProgram) -> String {
    let mut out = String::new();
    for s in &sp.stmts {
        stmt(&sp.program, s, 0, &mut out);
    }
    out
}

/// Renders a scalarized program preceded by an `// after <title>` header
/// line, used by IR snapshot dumps (`zlc --emit`).
pub fn print_with_header(title: &str, sp: &ScalarProgram) -> String {
    format!("// after {title}\n{}", print(sp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ElemStmt, ScalarProgram};
    use zlang::ir::{ArrayId, RegionId};

    #[test]
    fn prints_shared_outer_loop() {
        let p = zlang::compile(
            "program t; config n : int = 4; region R = [1..n, 1..n]; \
             var A, B : [R] float; begin end",
        )
        .unwrap();
        let inner = LoopNest {
            region: RegionId(0),
            structure: vec![2], // only dimension 2; dimension 1 is bound
            body: vec![crate::ir::ElemStmt {
                target: ElemRef::Array(ArrayId(0), Offset(vec![0, 0])),
                rhs: EExpr::Const(1.0),
            }],
            cluster: 0,
            temps: 0,
        };
        let sp = ScalarProgram {
            program: p,
            stmts: vec![LStmt::Outer {
                region: RegionId(0),
                dim: 0,
                reverse: false,
                body: vec![LStmt::Nest(inner)],
            }],
        };
        let text = print(&sp);
        assert!(text.contains("for i1 = 1 .. n { // shared outer"), "{text}");
        assert!(text.contains("for i2 = 1 .. n"), "{text}");
        assert!(text.contains("A[i1,i2] = 1;"), "{text}");
    }

    #[test]
    fn prints_nest_with_reversal_and_offsets() {
        let p = zlang::compile(
            "program t; config n : int = 4; region R = [1..n, 1..n]; \
             var A, B : [R] float; begin end",
        )
        .unwrap();
        let sp = ScalarProgram {
            program: p,
            stmts: vec![LStmt::Nest(LoopNest {
                region: RegionId(0),
                structure: vec![-1, 2],
                body: vec![ElemStmt {
                    target: ElemRef::Array(ArrayId(0), Offset(vec![0, 0])),
                    rhs: EExpr::Load(ArrayId(1), Offset(vec![-1, 1])),
                }],
                cluster: 3,
                temps: 0,
            })],
        };
        let text = print(&sp);
        assert!(text.contains("for i1 = n downto 1"), "{text}");
        assert!(text.contains("for i2 = 1 .. n"), "{text}");
        assert!(text.contains("A[i1,i2] = B[i1-1,i2+1];"), "{text}");
        assert!(text.contains("// cluster 3"), "{text}");
    }
}
