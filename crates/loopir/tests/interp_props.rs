//! Property tests for the execution engines' iteration machinery, run
//! against both the tree-walking [`Interp`] and the bytecode [`Vm`].

use loopir::{
    EExpr, ElemRef, ElemStmt, Engine, Interp, LStmt, LoopNest, NoopObserver, RunStats,
    ScalarProgram,
};
use testkit::cases;
use zlang::ir::{ArrayId, ConfigBinding, Offset, RegionId};

fn program(n: i64) -> ScalarProgram {
    let p = zlang::compile(&format!(
        "program t; config n : int = {n}; region R = [1..n, 1..n]; \
         var A, B : [R] float; var k : int; begin end"
    ))
    .unwrap();
    ScalarProgram {
        program: p,
        stmts: Vec::new(),
    }
}

/// All eight signed permutations of rank 2.
fn structures() -> Vec<Vec<i8>> {
    vec![
        vec![1, 2],
        vec![1, -2],
        vec![-1, 2],
        vec![-1, -2],
        vec![2, 1],
        vec![2, -1],
        vec![-2, 1],
        vec![-2, -1],
    ]
}

/// Runs a scalarized program on an engine, returning its stats.
fn run_stats(sp: &ScalarProgram, engine: Engine) -> RunStats {
    let mut exec = engine
        .executor(sp, ConfigBinding::defaults(&sp.program))
        .unwrap();
    exec.execute(&mut NoopObserver).unwrap().stats
}

/// Every loop structure visits every iteration point exactly once, and
/// pure element-wise computation is structure-independent.
#[test]
fn all_structures_visit_all_points_once() {
    cases(64, 0xa11, |rng| {
        let n = rng.range(2, 9);
        let structure = structures()[rng.below(8)].clone();
        let mut sp = program(n);
        sp.stmts = vec![LStmt::Nest(LoopNest {
            region: RegionId(0),
            structure,
            body: vec![ElemStmt {
                target: ElemRef::Array(ArrayId(0), Offset(vec![0, 0])),
                rhs: EExpr::Binary(
                    zlang::ast::BinOp::Add,
                    Box::new(EExpr::Binary(
                        zlang::ast::BinOp::Mul,
                        Box::new(EExpr::Index(0)),
                        Box::new(EExpr::Const(100.0)),
                    )),
                    Box::new(EExpr::Index(1)),
                ),
            }],
            cluster: 0,
            temps: 0,
        })];
        for engine in Engine::all() {
            let stats = run_stats(&sp, engine);
            assert_eq!(stats.points, (n * n) as u64, "{engine}");
            assert_eq!(stats.stores, (n * n) as u64, "{engine}");
        }
        // Row-major spot check, independent of iteration order.
        let mut i = Interp::new(&sp, ConfigBinding::defaults(&sp.program));
        i.run(&mut NoopObserver).unwrap();
        let a = i.array(ArrayId(0)).unwrap();
        for r in 1..=n {
            for c in 1..=n {
                let idx = ((r - 1) * n + (c - 1)) as usize;
                assert_eq!(a[idx], (r * 100 + c) as f64);
            }
        }
    });
}

/// Peak memory equals the sum of touched arrays' sizes, regardless of
/// how many nests touch them.
#[test]
fn peak_memory_counts_each_array_once() {
    cases(64, 0xbee, |rng| {
        let n = rng.range(2, 9);
        let repeats = rng.range(1, 4);
        let mut sp = program(n);
        let nest = LoopNest {
            region: RegionId(0),
            structure: vec![1, 2],
            body: vec![ElemStmt {
                target: ElemRef::Array(ArrayId(0), Offset(vec![0, 0])),
                rhs: EExpr::Const(1.0),
            }],
            cluster: 0,
            temps: 0,
        };
        sp.stmts = (0..repeats).map(|_| LStmt::Nest(nest.clone())).collect();
        for engine in Engine::all() {
            let stats = run_stats(&sp, engine);
            assert_eq!(stats.arrays_allocated, 1, "{engine}");
            assert_eq!(stats.peak_bytes, (n * n * 8) as u64, "{engine}");
        }
    });
}

/// Scalar control flow: a counted loop executes its body
/// `hi - lo + 1` times (or zero when empty), in either direction.
#[test]
fn for_loop_trip_counts() {
    cases(64, 0xf02, |rng| {
        let lo = rng.range(-5, 4);
        let span = rng.range(-2, 7);
        let down = rng.bool();
        let hi = lo + span;
        let mut sp = program(4);
        let body_nest = LoopNest {
            region: RegionId(0),
            structure: vec![1, 2],
            body: vec![ElemStmt {
                target: ElemRef::Array(ArrayId(0), Offset(vec![0, 0])),
                rhs: EExpr::Const(1.0),
            }],
            cluster: 0,
            temps: 0,
        };
        // `for k := lo to hi` (or `hi downto lo` reversed semantics).
        let (a, b) = if down { (hi, lo) } else { (lo, hi) };
        sp.stmts = vec![LStmt::For {
            var: zlang::ir::ScalarId(0),
            lo: zlang::ir::ScalarExpr::Const(a as f64),
            hi: zlang::ir::ScalarExpr::Const(b as f64),
            down,
            body: vec![LStmt::Nest(body_nest)],
        }];
        let trips = (hi - lo + 1).max(0) as u64;
        for engine in Engine::all() {
            let stats = run_stats(&sp, engine);
            assert_eq!(stats.points, trips * 16, "{engine}");
        }
    });
}
