//! Property tests for the interpreter's iteration machinery.

use loopir::{EExpr, ElemRef, ElemStmt, Interp, LStmt, LoopNest, NoopObserver, ScalarProgram};
use proptest::prelude::*;
use zlang::ir::{ArrayId, ConfigBinding, Offset, RegionId};

fn program(n: i64) -> ScalarProgram {
    let p = zlang::compile(&format!(
        "program t; config n : int = {n}; region R = [1..n, 1..n]; \
         var A, B : [R] float; var k : int; begin end"
    ))
    .unwrap();
    ScalarProgram { program: p, stmts: Vec::new() }
}

/// All eight signed permutations of rank 2.
fn structures() -> Vec<Vec<i8>> {
    vec![
        vec![1, 2],
        vec![1, -2],
        vec![-1, 2],
        vec![-1, -2],
        vec![2, 1],
        vec![2, -1],
        vec![-2, 1],
        vec![-2, -1],
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every loop structure visits every iteration point exactly once, and
    /// pure element-wise computation is structure-independent.
    #[test]
    fn all_structures_visit_all_points_once(n in 2i64..10, sidx in 0usize..8) {
        let structure = structures()[sidx].clone();
        let mut sp = program(n);
        sp.stmts = vec![LStmt::Nest(LoopNest {
            region: RegionId(0),
            structure,
            body: vec![ElemStmt {
                target: ElemRef::Array(ArrayId(0), Offset(vec![0, 0])),
                rhs: EExpr::Binary(
                    zlang::ast::BinOp::Add,
                    Box::new(EExpr::Binary(
                        zlang::ast::BinOp::Mul,
                        Box::new(EExpr::Index(0)),
                        Box::new(EExpr::Const(100.0)),
                    )),
                    Box::new(EExpr::Index(1)),
                ),
            }],
            cluster: 0,
            temps: 0,
        })];
        let mut i = Interp::new(&sp, ConfigBinding::defaults(&sp.program));
        let stats = i.run(&mut NoopObserver).unwrap();
        prop_assert_eq!(stats.points, (n * n) as u64);
        prop_assert_eq!(stats.stores, (n * n) as u64);
        // Row-major spot check, independent of iteration order.
        let a = i.array(ArrayId(0)).unwrap();
        for r in 1..=n {
            for c in 1..=n {
                let idx = ((r - 1) * n + (c - 1)) as usize;
                prop_assert_eq!(a[idx], (r * 100 + c) as f64);
            }
        }
    }

    /// Peak memory equals the sum of touched arrays' sizes, regardless of
    /// how many nests touch them.
    #[test]
    fn peak_memory_counts_each_array_once(n in 2i64..10, repeats in 1usize..5) {
        let mut sp = program(n);
        let nest = LoopNest {
            region: RegionId(0),
            structure: vec![1, 2],
            body: vec![ElemStmt {
                target: ElemRef::Array(ArrayId(0), Offset(vec![0, 0])),
                rhs: EExpr::Const(1.0),
            }],
            cluster: 0,
            temps: 0,
        };
        sp.stmts = (0..repeats).map(|_| LStmt::Nest(nest.clone())).collect();
        let mut i = Interp::new(&sp, ConfigBinding::defaults(&sp.program));
        let stats = i.run(&mut NoopObserver).unwrap();
        prop_assert_eq!(stats.arrays_allocated, 1);
        prop_assert_eq!(stats.peak_bytes, (n * n * 8) as u64);
    }

    /// Scalar control flow: a counted loop executes its body
    /// `hi - lo + 1` times (or zero when empty), in either direction.
    #[test]
    fn for_loop_trip_counts(lo in -5i64..5, span in -2i64..8, down in any::<bool>()) {
        let hi = lo + span;
        let mut sp = program(4);
        let body_nest = LoopNest {
            region: RegionId(0),
            structure: vec![1, 2],
            body: vec![ElemStmt {
                target: ElemRef::Array(ArrayId(0), Offset(vec![0, 0])),
                rhs: EExpr::Const(1.0),
            }],
            cluster: 0,
            temps: 0,
        };
        // `for k := lo to hi` (or `hi downto lo` reversed semantics).
        let (a, b) = if down { (hi, lo) } else { (lo, hi) };
        sp.stmts = vec![LStmt::For {
            var: zlang::ir::ScalarId(0),
            lo: zlang::ir::ScalarExpr::Const(a as f64),
            hi: zlang::ir::ScalarExpr::Const(b as f64),
            down,
            body: vec![LStmt::Nest(body_nest)],
        }];
        let mut i = Interp::new(&sp, ConfigBinding::defaults(&sp.program));
        let stats = i.run(&mut NoopObserver).unwrap();
        let trips = (hi - lo + 1).max(0) as u64;
        prop_assert_eq!(stats.points, trips * 16);
    }
}
