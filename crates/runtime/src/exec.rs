//! The simulated parallel executor.
//!
//! Interprets the scalarized program for one representative processor's
//! block through the cache simulator, while the communication tracker
//! accounts ghost fetches and overlap per nest. Total simulated time is
//! per-node compute plus unhidden communication plus reductions — the SPMD
//! symmetric model described in the crate docs.

use crate::comm::{CommPolicy, CommStats, CommTracker};
use loopir::{
    Engine, ExecError, ExecLimits, ExecOpts, LoopNest, Observer, RunStats, ScalarProgram,
};
use machine::presets::Machine;
use machine::sim::{MemSim, MemStats};
use zlang::ir::ConfigBinding;

/// Configuration of one simulated run.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Which machine to model.
    pub machine: Machine,
    /// Number of processors. The config binding should describe the
    /// *per-processor* block (the paper scales problem size with `procs`).
    pub procs: u64,
    /// Communication optimizations in effect.
    pub policy: CommPolicy,
    /// Which execution engine runs the scalarized program.
    pub engine: Engine,
    /// Worker-thread count for [`Engine::VmPar`] (`0` = auto); ignored by
    /// the sequential engines. Note the cache/communication *simulation*
    /// always runs the program sequentially regardless — `SimObserver`
    /// consumes the ordered address stream, and the parallel VM only fans
    /// out under observers that do not (see `loopir::Observer`).
    pub threads: usize,
    /// Resource budgets applied to the engine (fuel, deadline).
    pub limits: ExecLimits,
}

impl ExecConfig {
    /// Single-node run on a machine (no communication at all).
    pub fn serial(machine: Machine) -> Self {
        ExecConfig {
            machine,
            procs: 1,
            policy: CommPolicy::default(),
            engine: Engine::default(),
            threads: 0,
            limits: ExecLimits::none(),
        }
    }

    /// The same configuration with a different execution engine.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// The same configuration with a worker-thread count for
    /// [`Engine::VmPar`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The same configuration with resource budgets.
    pub fn with_limits(mut self, limits: ExecLimits) -> Self {
        self.limits = limits;
        self
    }

    /// The simulation config a [`RunRequest`](fusion_core::RunRequest)
    /// describes, on `machine` with `procs` processors: engine, threads,
    /// and limits come from the request (the limits' deadline clock
    /// starts at this call), the communication policy stays default.
    pub fn from_request(req: &fusion_core::RunRequest, machine: Machine, procs: u64) -> Self {
        ExecConfig {
            machine,
            procs,
            policy: CommPolicy::default(),
            engine: req.engine,
            threads: req.threads,
            limits: req.limits(),
        }
    }
}

/// The outcome of a simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Interpreter counters (loads, stores, flops, points, peak bytes).
    pub run: RunStats,
    /// Cache counters.
    pub mem: MemStats,
    /// Communication counters.
    pub comm: CommStats,
    /// Per-node compute time, nanoseconds.
    pub compute_ns: f64,
    /// Total simulated time, nanoseconds.
    pub total_ns: f64,
}

impl SimResult {
    /// Total time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns / 1e6
    }

    /// Percent improvement of `self` over a baseline run
    /// (positive = faster than baseline), as plotted in Figures 9–11.
    pub fn improvement_over(&self, baseline: &SimResult) -> f64 {
        100.0 * (baseline.total_ns - self.total_ns) / baseline.total_ns
    }
}

/// Observer gluing the cache simulator and the communication tracker.
struct SimObserver<'a> {
    mem: MemSim,
    comm: CommTracker,
    machine: &'a Machine,
    program: &'a zlang::ir::Program,
    binding: &'a ConfigBinding,
    /// MemStats snapshot at the last nest boundary.
    last: MemStats,
}

impl SimObserver<'_> {
    fn compute_ns(&self, s: MemStats) -> f64 {
        self.machine
            .cost
            .compute_ns(s.flops, s.accesses, s.l1_misses, s.l2_misses)
    }

    fn flush_compute(&mut self) {
        let cur = self.mem.stats();
        let delta = MemStats {
            accesses: cur.accesses - self.last.accesses,
            l1_misses: cur.l1_misses - self.last.l1_misses,
            l2_misses: cur.l2_misses - self.last.l2_misses,
            flops: cur.flops - self.last.flops,
        };
        self.last = cur;
        let ns = self.compute_ns(delta);
        self.comm.add_compute(ns);
    }
}

impl Observer for SimObserver<'_> {
    fn load(&mut self, addr: u64) {
        self.mem.load(addr);
    }

    fn store(&mut self, addr: u64) {
        self.mem.store(addr);
    }

    fn flops(&mut self, n: u64) {
        self.mem.flops(n);
    }

    fn nest_begin(&mut self, nest: &LoopNest) {
        self.flush_compute();
        self.comm.nest(self.program, self.binding, nest);
    }

    fn reduce_begin(&mut self) {
        self.flush_compute();
        self.comm.reductions(1);
    }
}

/// Runs a scalarized program under a machine model.
///
/// # Errors
///
/// Propagates engine errors (out-of-region accesses, exhausted fuel or
/// deadline budgets), and reports an unrecoverable injected
/// communication failure as an error of kind
/// [`Comm`](loopir::ErrorKind::Comm).
pub fn simulate(
    sp: &ScalarProgram,
    binding: ConfigBinding,
    cfg: &ExecConfig,
) -> Result<SimResult, ExecError> {
    simulate_outcome(sp, binding, cfg).map(|(_, sim)| sim)
}

/// Like [`simulate`], but also returns the program's [`loopir::RunOutcome`]
/// (final scalar values) alongside the timing result — for callers such
/// as the supervisor that need the computed answer, not just the model.
///
/// # Errors
///
/// Same as [`simulate`].
pub fn simulate_outcome(
    sp: &ScalarProgram,
    binding: ConfigBinding,
    cfg: &ExecConfig,
) -> Result<(loopir::RunOutcome, SimResult), ExecError> {
    let mut obs = SimObserver {
        mem: MemSim::new(cfg.machine.l1, cfg.machine.l2),
        comm: CommTracker::new(cfg.procs, cfg.machine.cost, cfg.policy),
        machine: &cfg.machine,
        program: &sp.program,
        binding: &binding,
        last: MemStats::default(),
    };
    let mut exec =
        cfg.engine
            .executor_with(sp, binding.clone(), ExecOpts::with_threads(cfg.threads))?;
    exec.set_limits(cfg.limits);
    let outcome = exec.execute(&mut obs)?;
    let run = outcome.stats;
    obs.flush_compute();
    if let Some(msg) = obs.comm.failure() {
        return Err(ExecError::comm(msg));
    }
    let mem = obs.mem.stats();
    let comm = obs.comm.stats();
    let compute_ns =
        cfg.machine
            .cost
            .compute_ns(mem.flops, mem.accesses, mem.l1_misses, mem.l2_misses);
    let total_ns = compute_ns + comm.effective_ns();
    Ok((
        outcome,
        SimResult {
            run,
            mem,
            comm,
            compute_ns,
            total_ns,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_core::pipeline::{Level, Pipeline};
    use machine::presets::{paragon, sp2, t3e};

    fn program(src: &str, level: Level) -> ScalarProgram {
        Pipeline::new(level)
            .optimize(&zlang::compile(src).unwrap())
            .scalarized
    }

    const SRC: &str = "program t; config n : int = 32; \
        region RH = [0..n+1, 0..n+1]; region R = [1..n, 1..n]; \
        var A : [RH] float; var B, C, D : [R] float; var s : float; var k : int; \
        begin \
          [RH] A := index1 + index2 * 0.5; \
          for k := 1 to 3 do \
            [R] B := (A@[-1,0] + A@[1,0] + A@[0,-1] + A@[0,1]) * 0.25; \
            [R] C := B * B; \
            [R] D := C + B; \
            [R] A := A + D * 0.01; \
          end; \
          s := +<< [R] A; end";

    #[test]
    fn serial_run_has_no_comm() {
        let sp = program(SRC, Level::Baseline);
        let r = simulate(
            &sp,
            ConfigBinding::defaults(&sp.program),
            &ExecConfig::serial(t3e()),
        )
        .unwrap();
        assert_eq!(r.comm.messages, 0);
        assert_eq!(r.comm.reductions, 0);
        assert!(r.compute_ns > 0.0);
        assert_eq!(r.total_ns, r.compute_ns);
    }

    #[test]
    fn parallel_run_communicates_and_reduces() {
        let sp = program(SRC, Level::Baseline);
        let cfg = ExecConfig {
            machine: t3e(),
            procs: 16,
            policy: CommPolicy::default(),
            engine: Engine::default(),
            threads: 0,
            limits: ExecLimits::none(),
        };
        let r = simulate(&sp, ConfigBinding::defaults(&sp.program), &cfg).unwrap();
        assert!(r.comm.messages > 0);
        assert_eq!(r.comm.reductions, 1);
        assert!(r.total_ns > r.compute_ns);
        assert!(r.comm.hidden_ns > 0.0, "pipelining hides some latency");
    }

    #[test]
    fn contraction_improves_simulated_time() {
        let base = program(SRC, Level::Baseline);
        let c2 = program(SRC, Level::C2);
        let cfg = ExecConfig::serial(paragon());
        let rb = simulate(&base, ConfigBinding::defaults(&base.program), &cfg).unwrap();
        let rc = simulate(&c2, ConfigBinding::defaults(&c2.program), &cfg).unwrap();
        assert!(
            rc.total_ns < rb.total_ns,
            "c2 ({}) must beat baseline ({})",
            rc.total_ns,
            rb.total_ns
        );
        assert!(rc.improvement_over(&rb) > 0.0);
        assert!(rc.run.peak_bytes < rb.run.peak_bytes);
    }

    #[test]
    fn results_identical_across_machines_and_engines() {
        // Machine models change time, never values — and neither does the
        // engine choice.
        let sp = program(SRC, Level::C2F3);
        let checksum = |m: Machine, engine: Engine| {
            let cfg = ExecConfig::serial(m).with_engine(engine);
            let r = simulate(&sp, ConfigBinding::defaults(&sp.program), &cfg).unwrap();
            let mut exec = engine
                .executor(&sp, ConfigBinding::defaults(&sp.program))
                .unwrap();
            let outcome = exec.execute(&mut loopir::NoopObserver).unwrap();
            (outcome.checksum(), r.mem)
        };
        let (a, mem_a) = checksum(t3e(), Engine::Interp);
        let (b, mem_b) = checksum(sp2(), Engine::Vm);
        assert_eq!(a, b);
        // Different machines: cache stats differ. Same machine, different
        // engine: identical access stream, identical cache stats.
        let (_, mem_c) = checksum(t3e(), Engine::Vm);
        assert_eq!(mem_a, mem_c);
        let _ = mem_b;
    }

    #[test]
    fn vm_par_simulates_identically_at_every_thread_count() {
        // The simulation consumes the ordered address stream, so the
        // parallel engine must stay sequential under it — identical cache
        // stats and values at every thread count.
        let sp = program(SRC, Level::C2F3);
        let run = |cfg: ExecConfig| {
            let (outcome, sim) = simulate_outcome(&sp, ConfigBinding::defaults(&sp.program), &cfg)
                .expect("clean run");
            (outcome.checksum().to_bits(), sim.mem)
        };
        let (base, mem_base) = run(ExecConfig::serial(t3e()).with_engine(Engine::Interp));
        for threads in [1, 2, 4] {
            let cfg = ExecConfig::serial(t3e())
                .with_engine(Engine::VmPar)
                .with_threads(threads);
            let (c, mem) = run(cfg);
            assert_eq!(c, base, "threads={threads}");
            assert_eq!(mem, mem_base, "threads={threads}");
        }
    }

    #[test]
    fn unrecoverable_comm_failure_surfaces_as_error() {
        use testkit::faults::{self, FaultPlan, FaultSite};
        let _g = faults::install(FaultPlan::new(3).with(FaultSite::CommDrop, 1.0));
        let sp = program(SRC, Level::Baseline);
        let cfg = ExecConfig {
            machine: t3e(),
            procs: 16,
            policy: CommPolicy::default(),
            engine: Engine::default(),
            threads: 0,
            limits: ExecLimits::none(),
        };
        let err = simulate(&sp, ConfigBinding::defaults(&sp.program), &cfg).unwrap_err();
        assert_eq!(err.kind, loopir::ErrorKind::Comm);
        assert!(err.message.contains("comm-drop"), "{}", err.message);
    }

    #[test]
    fn fuel_budget_applies_to_simulated_runs() {
        let sp = program(SRC, Level::Baseline);
        let cfg = ExecConfig::serial(t3e()).with_limits(ExecLimits::none().with_fuel(10));
        let err = simulate(&sp, ConfigBinding::defaults(&sp.program), &cfg).unwrap_err();
        assert_eq!(err.kind, loopir::ErrorKind::Fuel);
    }

    #[test]
    fn favor_comm_policy_loses_contraction() {
        // A is produced, then an independent statement computes B (the
        // overlap material for A's ghost fetch), then D consumes A@offset
        // and B. Favoring communication forbids fusing the B statement
        // into D's cluster, so B cannot contract.
        let src = "program t; config n : int = 16; \
            region RH = [0..n, 0..n]; region R = [1..n, 1..n]; \
            var A : [RH] float; var B, C, D : [R] float; var s : float; \
            begin \
              [RH] A := A + 0.01; \
              [R] B := C * 2.0; \
              [R] D := A@[-1,0] + B; \
              s := +<< [R] D; end";
        let p = zlang::compile(src).unwrap();
        let favor_fusion = Pipeline::new(Level::C2F3).optimize(&p);
        let favor_comm = Pipeline::new(Level::C2F3)
            .with_forbidden(crate::comm::favor_comm_pairs)
            .optimize(&p);
        assert!(
            favor_comm.contracted.len() < favor_fusion.contracted.len(),
            "favoring communication forbids fusions and loses contraction: {} vs {}",
            favor_comm.contracted.len(),
            favor_fusion.contracted.len()
        );
    }
}
