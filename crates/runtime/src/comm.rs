//! Ghost-region communication accounting and communication optimizations.
//!
//! In the block distribution, a read `A@d` needs, along every distributed
//! dimension with a nonzero offset, a boundary slab from the neighboring
//! processor. At the array level each such need is one *vectorized*
//! message per loop nest (message vectorization never conflicts with
//! fusion, Section 5.5, so it is always on). On top of that the tracker
//! models:
//!
//! * **redundancy elimination** — a ghost region already fetched and not
//!   invalidated by a write is not re-fetched;
//! * **message combining** — messages leaving one comm point for the same
//!   neighbor are merged (one latency, summed bytes);
//! * **pipelining** — communication issued after the producing nest
//!   overlaps with independent computation executed before the consuming
//!   nest; overlapped time is hidden (up to 90%, the send/receive issue
//!   overhead cannot be hidden).

use crate::grid::Grid;
use fusion_core::asdg::Asdg;
use fusion_core::normal::NormProgram;
use loopir::{ElemRef, LoopNest};
use machine::cost::CostModel;
use std::collections::HashMap;
use zlang::ir::{ArrayId, ConfigBinding, Program};

/// Which communication optimizations are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommPolicy {
    /// Skip fetches whose ghost region is still valid.
    pub redundancy_elim: bool,
    /// Merge same-neighbor messages at one comm point.
    pub combining: bool,
    /// Overlap communication with independent computation.
    pub pipelining: bool,
}

impl Default for CommPolicy {
    fn default() -> Self {
        CommPolicy {
            redundancy_elim: true,
            combining: true,
            pipelining: true,
        }
    }
}

impl CommPolicy {
    /// All optimizations off (pure vectorized messaging).
    pub fn none() -> Self {
        CommPolicy {
            redundancy_elim: false,
            combining: false,
            pipelining: false,
        }
    }
}

/// Accumulated communication counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommStats {
    /// Point-to-point messages sent (after combining/elimination),
    /// including resends and duplicates.
    pub messages: u64,
    /// Payload bytes, including resends and duplicates.
    pub bytes: u64,
    /// Raw communication time before overlap, nanoseconds.
    pub comm_ns: f64,
    /// Communication time hidden by pipelining, nanoseconds.
    pub hidden_ns: f64,
    /// Global reductions performed.
    pub reductions: u64,
    /// Time spent in global reductions, nanoseconds.
    pub reduction_ns: f64,
    /// Resends after a dropped exchange (fault injection).
    pub retries: u64,
    /// Exchanges dropped in flight (fault injection).
    pub dropped: u64,
    /// Duplicate deliveries (fault injection); semantically harmless,
    /// they only re-pay the message cost.
    pub duplicated: u64,
    /// Exponential-backoff wait before resends, nanoseconds. Backoff is
    /// idle time, so pipelining cannot hide it.
    pub backoff_ns: f64,
}

impl CommStats {
    /// Communication time that remains on the critical path.
    pub fn effective_ns(&self) -> f64 {
        self.comm_ns - self.hidden_ns + self.reduction_ns + self.backoff_ns
    }
}

/// One ghost-region need: array, dimension, direction, depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct GhostKey {
    array: ArrayId,
    dim: usize,
    positive: bool,
}

/// Tracks ghost validity and overlap credit across the nest stream.
#[derive(Debug)]
pub struct CommTracker {
    procs: u64,
    cost: CostModel,
    policy: CommPolicy,
    /// Valid ghosts: key → fetched depth.
    valid: HashMap<GhostKey, i64>,
    /// Cumulative compute time observed so far (fed by the executor).
    cum_compute_ns: f64,
    /// Per-array compute timestamp of the last write.
    write_stamp: HashMap<ArrayId, f64>,
    stats: CommStats,
    /// Set when an injected exchange failure exhausted its retries; the
    /// simulation's numbers are no longer meaningful past this point.
    failure: Option<String>,
}

impl CommTracker {
    /// Creates a tracker for `procs` processors on a machine cost model.
    pub fn new(procs: u64, cost: CostModel, policy: CommPolicy) -> Self {
        CommTracker {
            procs,
            cost,
            policy,
            valid: HashMap::new(),
            cum_compute_ns: 0.0,
            write_stamp: HashMap::new(),
            stats: CommStats::default(),
            failure: None,
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// The first unrecoverable exchange failure, if any (fault
    /// injection exhausted the bounded retries at some comm point).
    pub fn failure(&self) -> Option<&str> {
        self.failure.as_deref()
    }

    /// Reports compute time executed since the last call (overlap credit).
    pub fn add_compute(&mut self, ns: f64) {
        self.cum_compute_ns += ns;
    }

    /// Accounts one dynamic execution of a loop nest: ghost fetches for its
    /// offset reads, then invalidation for its stores, plus in-nest
    /// reductions.
    pub fn nest(&mut self, program: &Program, binding: &ConfigBinding, nest: &LoopNest) {
        if self.procs > 1 {
            self.fetch_ghosts(program, binding, nest);
        }
        // Fused reductions: one global combine each.
        let nred = nest
            .body
            .iter()
            .filter(|s| matches!(s.target, ElemRef::Reduce(..)))
            .count() as u64;
        self.reductions(nred);
        // Writes invalidate ghosts of the written arrays.
        for (a, _) in nest.stores() {
            self.valid.retain(|k, _| k.array != a);
            self.write_stamp.insert(a, self.cum_compute_ns);
        }
    }

    /// Accounts `n` standalone global reductions.
    pub fn reductions(&mut self, n: u64) {
        if n == 0 || self.procs <= 1 {
            return;
        }
        self.stats.reductions += n;
        self.stats.reduction_ns += n as f64 * self.cost.reduction_ns(self.procs, 8);
    }

    fn fetch_ghosts(&mut self, program: &Program, binding: &ConfigBinding, nest: &LoopNest) {
        let region = program.region(nest.region);
        let bounds = region.bounds(binding);
        let rank = bounds.len();
        let grid = Grid::factor(self.procs, rank);
        let extents: Vec<i64> = bounds
            .iter()
            .map(|&(lo, hi)| (hi - lo + 1).max(0))
            .collect();

        // Collect needs: (array, dim, sign) → max depth.
        let mut needs: HashMap<GhostKey, i64> = HashMap::new();
        for (a, off) in nest.loads() {
            for d in 0..off.rank() {
                let v = off.0[d];
                if v != 0 && grid.split(d) {
                    let key = GhostKey {
                        array: a,
                        dim: d,
                        positive: v > 0,
                    };
                    let depth = v.abs();
                    needs
                        .entry(key)
                        .and_modify(|x| *x = (*x).max(depth))
                        .or_insert(depth);
                }
            }
        }
        if needs.is_empty() {
            return;
        }

        // Redundancy elimination.
        let mut to_fetch: Vec<(GhostKey, i64)> = needs
            .into_iter()
            .filter(|(k, depth)| {
                !(self.policy.redundancy_elim
                    && self.valid.get(k).is_some_and(|&have| have >= *depth))
            })
            .collect();
        if to_fetch.is_empty() {
            return;
        }
        to_fetch.sort_by_key(|(k, _)| (k.dim, k.positive, k.array));

        // Message accounting with optional combining per neighbor.
        let mut point_bytes = 0u64;
        let mut point_msgs = 0u64;
        let mut per_neighbor: HashMap<(usize, bool), u64> = HashMap::new();
        let mut oldest_stamp: f64 = f64::INFINITY;
        for (k, depth) in &to_fetch {
            let slab: i64 = (0..rank)
                .map(|j| if j == k.dim { *depth } else { extents[j] })
                .product();
            let bytes = (slab.max(0) as u64) * 8;
            point_bytes += bytes;
            *per_neighbor.entry((k.dim, k.positive)).or_insert(0) += 1;
            self.valid.insert(*k, *depth);
            let stamp = self.write_stamp.get(&k.array).copied().unwrap_or(0.0);
            oldest_stamp = oldest_stamp.min(stamp);
        }
        point_msgs += if self.policy.combining {
            per_neighbor.len() as u64
        } else {
            per_neighbor.values().sum::<u64>()
        };

        let mut comm = self.cost.comm_ns(point_msgs, point_bytes);
        self.stats.messages += point_msgs;
        self.stats.bytes += point_bytes;

        // Fault injection (chaos testing). A dropped exchange is resent
        // with exponential backoff, up to MAX_RETRIES times; each resend
        // re-pays the messages, bytes, and wire time, and the backoff
        // waits accumulate as unhideable idle time. Exhausting the
        // retries records an unrecoverable failure for the executor to
        // surface. A duplicated delivery re-pays one exchange's cost but
        // is semantically harmless.
        const MAX_RETRIES: u32 = 4;
        if testkit::faults::fire(testkit::faults::FaultSite::CommDrop) {
            let latency = self.cost.comm_ns(point_msgs, point_bytes);
            let mut delivered = false;
            for attempt in 0..MAX_RETRIES {
                self.stats.dropped += 1;
                self.stats.retries += 1;
                self.stats.backoff_ns += latency * (1u64 << attempt) as f64;
                self.stats.messages += point_msgs;
                self.stats.bytes += point_bytes;
                comm += latency;
                if !testkit::faults::fire(testkit::faults::FaultSite::CommDrop) {
                    delivered = true;
                    break;
                }
            }
            if !delivered && self.failure.is_none() {
                self.failure = Some(format!(
                    "ghost exchange dropped {MAX_RETRIES} consecutive resends (comm-drop); giving up"
                ));
            }
        }
        if testkit::faults::fire(testkit::faults::FaultSite::CommDup) {
            self.stats.duplicated += point_msgs;
            self.stats.messages += point_msgs;
            self.stats.bytes += point_bytes;
            comm += self.cost.comm_ns(point_msgs, point_bytes);
        }

        self.stats.comm_ns += comm;

        // Pipelining: overlap with compute executed since the producing
        // write (conservatively, the most recent producer among the fetched
        // arrays bounds the window). The hideable fraction is a machine
        // property: hardware-offloaded messaging (T3E) hides more than
        // processor-driven protocols (SP-2, Paragon).
        if self.policy.pipelining {
            let newest_producer = to_fetch
                .iter()
                .map(|(k, _)| self.write_stamp.get(&k.array).copied().unwrap_or(0.0))
                .fold(0.0f64, f64::max);
            let window = (self.cum_compute_ns - newest_producer).max(0.0);
            let hidden = (self.cost.overlap_efficiency * comm).min(window);
            self.stats.hidden_ns += hidden;
        }
    }
}

/// Statement pairs that must **not** fuse under the *favor communication*
/// policy (Section 5.5): for every statement `s` that needs ghost data for
/// some array `X` (an offset read), the independent statements between
/// `X`'s producer and `s` are the computation that pipelining overlaps the
/// fetch with; fusing them into `s`'s cluster destroys the overlap window.
///
/// Plug into [`fusion_core::Pipeline::with_forbidden`].
pub fn favor_comm_pairs(np: &NormProgram, block: usize, asdg: &Asdg) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let blk = &np.blocks[block];
    for s in 0..asdg.n {
        for (x, off, def) in &asdg.read_defs[s] {
            if off.is_zero() {
                continue;
            }
            let start = match asdg.def(*def).def_stmt {
                Some(w) => w + 1,
                None => 0,
            };
            for m in start..s {
                let refs_x = blk.stmts[m].lhs_array() == Some(*x)
                    || blk.stmts[m].reads().iter().any(|(a, _)| a == x);
                if !refs_x && !out.contains(&(m, s)) {
                    out.push((m, s));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::presets::t3e;

    fn nest_reading(program: &Program, offs: &[(u32, Vec<i64>)]) -> LoopNest {
        use loopir::{EExpr, ElemStmt};
        use zlang::ir::Offset;
        let mut rhs = EExpr::Const(0.0);
        for (a, off) in offs {
            rhs = EExpr::Binary(
                zlang::ast::BinOp::Add,
                Box::new(rhs),
                Box::new(EExpr::Load(ArrayId(*a), Offset(off.clone()))),
            );
        }
        let _ = program;
        LoopNest {
            region: zlang::ir::RegionId(0),
            structure: vec![1, 2],
            body: vec![ElemStmt {
                target: ElemRef::Array(ArrayId(0), Offset(vec![0, 0])),
                rhs,
            }],
            cluster: 0,
            temps: 0,
        }
    }

    fn test_program() -> (Program, ConfigBinding) {
        let p = zlang::compile(
            "program t; config n : int = 16; region R = [1..n, 1..n]; \
             var A, B, C : [R] float; begin end",
        )
        .unwrap();
        let b = ConfigBinding::defaults(&p);
        (p, b)
    }

    #[test]
    fn aligned_reads_need_no_communication() {
        let (p, b) = test_program();
        let mut t = CommTracker::new(4, t3e().cost, CommPolicy::default());
        t.nest(&p, &b, &nest_reading(&p, &[(1, vec![0, 0])]));
        assert_eq!(t.stats().messages, 0);
    }

    #[test]
    fn single_processor_never_communicates() {
        let (p, b) = test_program();
        let mut t = CommTracker::new(1, t3e().cost, CommPolicy::default());
        t.nest(
            &p,
            &b,
            &nest_reading(&p, &[(1, vec![-1, 0]), (2, vec![0, 1])]),
        );
        assert_eq!(t.stats().messages, 0);
        assert_eq!(t.stats().comm_ns, 0.0);
    }

    #[test]
    fn offset_read_fetches_boundary_slab() {
        let (p, b) = test_program();
        let mut t = CommTracker::new(4, t3e().cost, CommPolicy::default());
        t.nest(&p, &b, &nest_reading(&p, &[(1, vec![-1, 0])]));
        let s = t.stats();
        assert_eq!(s.messages, 1);
        assert_eq!(s.bytes, 16 * 8, "one 16-element row");
    }

    #[test]
    fn redundancy_elimination_skips_refetch() {
        let (p, b) = test_program();
        let mut t = CommTracker::new(4, t3e().cost, CommPolicy::default());
        let n = nest_reading(&p, &[(1, vec![-1, 0])]);
        t.nest(&p, &b, &n);
        t.nest(&p, &b, &n);
        assert_eq!(t.stats().messages, 1, "second fetch eliminated");
        let mut t2 = CommTracker::new(4, t3e().cost, CommPolicy::none());
        t2.nest(&p, &b, &n);
        t2.nest(&p, &b, &n);
        assert_eq!(t2.stats().messages, 2, "no elimination when disabled");
    }

    #[test]
    fn writes_invalidate_ghosts() {
        let (p, b) = test_program();
        let mut t = CommTracker::new(4, t3e().cost, CommPolicy::default());
        // Nest writes array 0 and reads array 0's neighbor next time.
        let n = nest_reading(&p, &[(0, vec![-1, 0])]);
        t.nest(&p, &b, &n); // fetch + write (target is array 0)
        t.nest(&p, &b, &n); // ghost invalid again -> refetch
        assert_eq!(t.stats().messages, 2);
    }

    #[test]
    fn combining_merges_same_neighbor_messages() {
        let (p, b) = test_program();
        let mut t = CommTracker::new(4, t3e().cost, CommPolicy::default());
        // Two arrays fetched from the same (dim 0, negative) neighbor.
        t.nest(
            &p,
            &b,
            &nest_reading(&p, &[(1, vec![-1, 0]), (2, vec![-1, 0])]),
        );
        assert_eq!(t.stats().messages, 1);
        let mut t2 = CommTracker::new(4, t3e().cost, CommPolicy::none());
        t2.nest(
            &p,
            &b,
            &nest_reading(&p, &[(1, vec![-1, 0]), (2, vec![-1, 0])]),
        );
        assert_eq!(t2.stats().messages, 2);
    }

    #[test]
    fn pipelining_hides_comm_behind_compute() {
        let (p, b) = test_program();
        let mut t = CommTracker::new(4, t3e().cost, CommPolicy::default());
        t.add_compute(1e9); // plenty of independent compute beforehand
        t.nest(&p, &b, &nest_reading(&p, &[(1, vec![-1, 0])]));
        let s = t.stats();
        assert!(s.hidden_ns > 0.0);
        assert!((s.hidden_ns - 0.9 * s.comm_ns).abs() < 1e-9, "90% cap");
    }

    #[test]
    fn no_overlap_credit_right_after_producer_write() {
        let (p, b) = test_program();
        let mut t = CommTracker::new(4, t3e().cost, CommPolicy::default());
        t.add_compute(1e9);
        // A nest that WRITES array 1 stamps it...
        let writer = {
            use loopir::{EExpr, ElemStmt};
            use zlang::ir::Offset;
            LoopNest {
                region: zlang::ir::RegionId(0),
                structure: vec![1, 2],
                body: vec![ElemStmt {
                    target: ElemRef::Array(ArrayId(1), Offset(vec![0, 0])),
                    rhs: EExpr::Const(1.0),
                }],
                cluster: 0,
                temps: 0,
            }
        };
        t.nest(&p, &b, &writer);
        // ...so the immediately following consumer has no window.
        t.nest(&p, &b, &nest_reading(&p, &[(1, vec![-1, 0])]));
        assert_eq!(t.stats().hidden_ns, 0.0);
    }

    #[test]
    fn reductions_cost_log_tree() {
        let (p, b) = test_program();
        let _ = (&p, &b);
        let mut t4 = CommTracker::new(4, t3e().cost, CommPolicy::default());
        t4.reductions(1);
        let mut t16 = CommTracker::new(16, t3e().cost, CommPolicy::default());
        t16.reductions(1);
        assert_eq!(t16.stats().reduction_ns, 2.0 * t4.stats().reduction_ns);
        let mut t1 = CommTracker::new(1, t3e().cost, CommPolicy::default());
        t1.reductions(5);
        assert_eq!(t1.stats().reduction_ns, 0.0);
    }

    #[test]
    fn dropped_exchange_retries_with_backoff() {
        use testkit::faults::{self, FaultPlan, FaultSite};
        let (p, b) = test_program();
        // Drop exactly once: the first resend succeeds.
        let _g = faults::install(FaultPlan::new(1).with_limited(FaultSite::CommDrop, 1.0, Some(1)));
        let mut t = CommTracker::new(4, t3e().cost, CommPolicy::default());
        t.nest(&p, &b, &nest_reading(&p, &[(1, vec![-1, 0])]));
        let s = t.stats();
        assert_eq!(s.dropped, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.messages, 2, "original + resend");
        assert!(s.backoff_ns > 0.0);
        assert!(t.failure().is_none());
        assert!(s.effective_ns() >= s.backoff_ns, "backoff is unhideable");
    }

    #[test]
    fn exhausted_retries_record_failure() {
        use testkit::faults::{self, FaultPlan, FaultSite};
        let (p, b) = test_program();
        let _g = faults::install(FaultPlan::new(1).with(FaultSite::CommDrop, 1.0));
        let mut t = CommTracker::new(4, t3e().cost, CommPolicy::default());
        t.nest(&p, &b, &nest_reading(&p, &[(1, vec![-1, 0])]));
        let s = t.stats();
        assert_eq!(s.retries, 4, "bounded retries");
        assert!(t.failure().is_some());
        assert!(t.failure().unwrap().contains("comm-drop"));
        // Backoff doubles each resend: 1+2+4+8 = 15 latencies.
        assert!(s.backoff_ns > 0.0);
    }

    #[test]
    fn duplicated_delivery_is_costed_but_harmless() {
        use testkit::faults::{self, FaultPlan, FaultSite};
        let (p, b) = test_program();
        let _g = faults::install(FaultPlan::new(1).with_limited(FaultSite::CommDup, 1.0, Some(1)));
        let mut t = CommTracker::new(4, t3e().cost, CommPolicy::default());
        t.nest(&p, &b, &nest_reading(&p, &[(1, vec![-1, 0])]));
        let s = t.stats();
        assert_eq!(s.duplicated, 1);
        assert_eq!(s.messages, 2, "original + duplicate");
        assert!(t.failure().is_none());
    }

    #[test]
    fn favor_comm_pairs_protect_overlap_window() {
        // s0 writes X; s1 independent; s2 reads X@offset. Pair (1,2) must
        // be forbidden; (0,2) is not (they can never fuse anyway, and s0
        // references X).
        let np = fusion_core::normal::normalize(
            &zlang::compile(
                "program t; config n : int = 8; region RH = [0..n, 0..n]; \
                 region R = [1..n, 1..n]; var X : [RH] float; var T, Y, Z : [R] float; \
                 var s : float; begin \
                 [RH] X := 1.0; [R] T := Y + Y; [R] Z := X@[-1,0] + T; \
                 s := +<< [R] Z; end",
            )
            .unwrap(),
        );
        let g = fusion_core::asdg::build(&np.program, &np.blocks[0]);
        let pairs = favor_comm_pairs(&np, 0, &g);
        assert!(pairs.contains(&(1, 2)), "{pairs:?}");
        assert!(!pairs.contains(&(0, 2)), "{pairs:?}");
    }
}
