//! Processor grid factorization for block distribution.

/// A processor grid: `dims[i]` processors along array dimension `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    /// Processors per dimension.
    pub dims: Vec<u64>,
}

impl Grid {
    /// Factors `p` processors over `rank` dimensions as squarely as
    /// possible (largest factors first), e.g. `p=64, rank=2 → [8, 8]`,
    /// `p=16, rank=3 → [4, 2, 2]`.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` or `rank == 0`.
    pub fn factor(p: u64, rank: usize) -> Self {
        assert!(
            p > 0 && rank > 0,
            "need at least one processor and one dimension"
        );
        let mut dims = vec![1u64; rank];
        let mut remaining = p;
        // Repeatedly peel the largest prime factor onto the currently
        // smallest grid dimension.
        while remaining > 1 {
            let f = smallest_prime_factor(remaining);
            let (i, _) = dims
                .iter()
                .enumerate()
                .min_by_key(|&(_, &d)| d)
                .expect("rank > 0");
            dims[i] *= f;
            remaining /= f;
        }
        dims.sort_unstable_by(|a, b| b.cmp(a));
        Grid { dims }
    }

    /// Total processors.
    pub fn procs(&self) -> u64 {
        self.dims.iter().product()
    }

    /// True if dimension `d` is actually split across processors (an
    /// interior processor has neighbors in that dimension).
    pub fn split(&self, d: usize) -> bool {
        self.dims.get(d).copied().unwrap_or(1) > 1
    }
}

fn smallest_prime_factor(n: u64) -> u64 {
    debug_assert!(n > 1);
    let mut f = 2;
    while f * f <= n {
        if n.is_multiple_of(f) {
            return f;
        }
        f += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squares_factor_evenly() {
        assert_eq!(Grid::factor(64, 2).dims, vec![8, 8]);
        assert_eq!(Grid::factor(16, 2).dims, vec![4, 4]);
        assert_eq!(Grid::factor(4, 2).dims, vec![2, 2]);
    }

    #[test]
    fn non_squares_stay_close() {
        assert_eq!(Grid::factor(8, 2).dims, vec![4, 2]);
        assert_eq!(Grid::factor(16, 3).dims, vec![4, 2, 2]);
        assert_eq!(Grid::factor(60, 2).dims, vec![10, 6]);
    }

    #[test]
    fn rank_one_takes_everything() {
        assert_eq!(Grid::factor(6, 1).dims, vec![6]);
    }

    #[test]
    fn single_processor_never_splits() {
        let g = Grid::factor(1, 2);
        assert_eq!(g.procs(), 1);
        assert!(!g.split(0));
        assert!(!g.split(1));
    }

    #[test]
    fn procs_roundtrips() {
        for p in [1u64, 2, 3, 4, 6, 8, 12, 16, 64, 100] {
            for rank in 1..=3 {
                assert_eq!(Grid::factor(p, rank).procs(), p, "p={p} rank={rank}");
            }
        }
    }
}
