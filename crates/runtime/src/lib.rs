//! Simulated parallel runtime.
//!
//! The paper's evaluation runs ZPL programs on up to 64 processors of
//! three message-passing machines. This crate reproduces that setting with
//! an SPMD-symmetric simulation:
//!
//! * Arrays are block-distributed over a processor [`grid`]; every
//!   dimension is distributed (as the paper assumes in Section 3).
//! * The simulator interprets **one representative interior processor's**
//!   block (the paper scales problem size with the processor count, so per-
//!   processor work is constant and processors are symmetric), measuring
//!   compute time through the `machine` crate's cache simulator.
//! * `@`-offset reads of distributed arrays induce **ghost-region
//!   communication**, accounted per loop nest by the [`comm`] module with
//!   the paper's communication optimizations: message vectorization,
//!   redundancy elimination, message combining, and pipelining (overlap).
//! * Reductions cost a log-tree combine.
//!
//! The [`exec`] module glues these into a single [`exec::simulate`] entry
//! point; [`comm::favor_comm_pairs`] implements the *favor communication
//! over fusion* policy of Section 5.5 as a fusion filter for
//! `fusion_core::Pipeline::with_forbidden`.

pub mod comm;
pub mod exec;
pub mod grid;

pub use comm::{CommPolicy, CommStats};
pub use exec::{simulate, simulate_outcome, ExecConfig, SimResult};
pub use grid::Grid;
