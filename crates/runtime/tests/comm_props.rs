//! Property tests for the communication model.

use machine::presets::t3e;
use runtime::comm::{CommPolicy, CommTracker};
use runtime::Grid;
use testkit::{cases, Rng};
use zlang::ir::{ArrayId, ConfigBinding, Offset, Program, RegionId};

fn program() -> (Program, ConfigBinding) {
    let p = zlang::compile(
        "program t; config n : int = 16; region R = [1..n, 1..n]; \
         var A, B, C, D : [R] float; begin end",
    )
    .unwrap();
    let b = ConfigBinding::defaults(&p);
    (p, b)
}

/// One synthetic nest: a set of (array, offset) loads plus a store target.
fn nest(loads: &[(u32, (i64, i64))], store: u32) -> loopir::LoopNest {
    use loopir::{EExpr, ElemRef, ElemStmt};
    let mut rhs = EExpr::Const(0.0);
    for &(a, (i, j)) in loads {
        rhs = EExpr::Binary(
            zlang::ast::BinOp::Add,
            Box::new(rhs),
            Box::new(EExpr::Load(ArrayId(a), Offset(vec![i, j]))),
        );
    }
    loopir::LoopNest {
        region: RegionId(0),
        structure: vec![1, 2],
        body: vec![ElemStmt {
            target: ElemRef::Array(ArrayId(store), Offset(vec![0, 0])),
            rhs,
        }],
        cluster: 0,
        temps: 0,
    }
}

fn arb_nest(rng: &mut Rng) -> loopir::LoopNest {
    let n = rng.below(5);
    let loads: Vec<(u32, (i64, i64))> = (0..n)
        .map(|_| (rng.range(0, 3) as u32, (rng.range(-1, 1), rng.range(-1, 1))))
        .collect();
    let store = rng.range(0, 3) as u32;
    nest(&loads, store)
}

#[test]
fn optimizations_never_increase_traffic() {
    cases(128, 0x7aff1c, |rng| {
        let count = rng.range(1, 11) as usize;
        let nests: Vec<_> = (0..count).map(|_| arb_nest(rng)).collect();
        let compute_per_nest = rng.f64(0.0, 1e6);
        let (p, b) = program();
        let mut optimized = CommTracker::new(16, t3e().cost, CommPolicy::default());
        let mut naive = CommTracker::new(16, t3e().cost, CommPolicy::none());
        for n in &nests {
            optimized.add_compute(compute_per_nest);
            naive.add_compute(compute_per_nest);
            optimized.nest(&p, &b, n);
            naive.nest(&p, &b, n);
        }
        let o = optimized.stats();
        let nv = naive.stats();
        assert!(
            o.messages <= nv.messages,
            "{} > {}",
            o.messages,
            nv.messages
        );
        assert!(o.bytes <= nv.bytes);
        assert!(o.comm_ns <= nv.comm_ns + 1e-9);
        assert_eq!(nv.hidden_ns, 0.0, "pipelining disabled hides nothing");
        assert!(o.hidden_ns <= o.comm_ns * t3e().cost.overlap_efficiency + 1e-9);
        assert!(o.effective_ns() >= 0.0);
    });
}

#[test]
fn more_processors_never_decrease_per_node_messages() {
    cases(128, 0x9a0c, |rng| {
        let count = rng.range(1, 7) as usize;
        let nests: Vec<_> = (0..count).map(|_| arb_nest(rng)).collect();
        let (p, b) = program();
        let mut msgs = Vec::new();
        for procs in [1u64, 4, 16] {
            let mut t = CommTracker::new(procs, t3e().cost, CommPolicy::none());
            for n in &nests {
                t.nest(&p, &b, n);
            }
            msgs.push(t.stats().messages);
        }
        assert_eq!(msgs[0], 0, "single node never communicates");
        // 4 procs = 2x2 grid: both dims split; 16 likewise — counts equal.
        assert!(msgs[1] <= msgs[2] || msgs[1] == msgs[2]);
    });
}

#[test]
fn grid_factor_roundtrips() {
    cases(128, 0x62d, |rng| {
        let p = rng.range(1, 4095) as u64;
        let rank = rng.range(1, 3) as usize;
        let g = Grid::factor(p, rank);
        assert_eq!(g.procs(), p);
        assert_eq!(g.dims.len(), rank);
        // Balanced: max/min ratio bounded by the largest prime factor.
        let mx = *g.dims.iter().max().unwrap();
        let mn = *g.dims.iter().min().unwrap();
        assert!(mx / mn <= p, "degenerate factorization {:?}", g.dims);
    });
}
