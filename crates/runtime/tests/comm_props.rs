//! Property tests for the communication model.

use machine::presets::t3e;
use proptest::prelude::*;
use runtime::comm::{CommPolicy, CommTracker};
use runtime::Grid;
use zlang::ir::{ArrayId, ConfigBinding, Offset, Program, RegionId};

fn program() -> (Program, ConfigBinding) {
    let p = zlang::compile(
        "program t; config n : int = 16; region R = [1..n, 1..n]; \
         var A, B, C, D : [R] float; begin end",
    )
    .unwrap();
    let b = ConfigBinding::defaults(&p);
    (p, b)
}

/// One synthetic nest: a set of (array, offset) loads plus a store target.
fn nest(loads: &[(u32, (i64, i64))], store: u32) -> loopir::LoopNest {
    use loopir::{EExpr, ElemRef, ElemStmt};
    let mut rhs = EExpr::Const(0.0);
    for &(a, (i, j)) in loads {
        rhs = EExpr::Binary(
            zlang::ast::BinOp::Add,
            Box::new(rhs),
            Box::new(EExpr::Load(ArrayId(a), Offset(vec![i, j]))),
        );
    }
    loopir::LoopNest {
        region: RegionId(0),
        structure: vec![1, 2],
        body: vec![ElemStmt { target: ElemRef::Array(ArrayId(store), Offset(vec![0, 0])), rhs }],
        cluster: 0,
        temps: 0,
    }
}

fn arb_nest() -> impl Strategy<Value = loopir::LoopNest> {
    (
        prop::collection::vec((0u32..4, (-1i64..=1, -1i64..=1)), 0..5),
        0u32..4,
    )
        .prop_map(|(loads, store)| nest(&loads, store))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn optimizations_never_increase_traffic(
        nests in prop::collection::vec(arb_nest(), 1..12),
        compute_per_nest in 0.0f64..1e6
    ) {
        let (p, b) = program();
        let mut optimized = CommTracker::new(16, t3e().cost, CommPolicy::default());
        let mut naive = CommTracker::new(16, t3e().cost, CommPolicy::none());
        for n in &nests {
            optimized.add_compute(compute_per_nest);
            naive.add_compute(compute_per_nest);
            optimized.nest(&p, &b, n);
            naive.nest(&p, &b, n);
        }
        let o = optimized.stats();
        let nv = naive.stats();
        prop_assert!(o.messages <= nv.messages, "{} > {}", o.messages, nv.messages);
        prop_assert!(o.bytes <= nv.bytes);
        prop_assert!(o.comm_ns <= nv.comm_ns + 1e-9);
        prop_assert_eq!(nv.hidden_ns, 0.0, "pipelining disabled hides nothing");
        prop_assert!(o.hidden_ns <= o.comm_ns * t3e().cost.overlap_efficiency + 1e-9);
        prop_assert!(o.effective_ns() >= 0.0);
    }

    #[test]
    fn more_processors_never_decrease_per_node_messages(
        nests in prop::collection::vec(arb_nest(), 1..8)
    ) {
        let (p, b) = program();
        let mut msgs = Vec::new();
        for procs in [1u64, 4, 16] {
            let mut t = CommTracker::new(procs, t3e().cost, CommPolicy::none());
            for n in &nests {
                t.nest(&p, &b, n);
            }
            msgs.push(t.stats().messages);
        }
        prop_assert_eq!(msgs[0], 0, "single node never communicates");
        // 4 procs = 2x2 grid: both dims split; 16 likewise — counts equal.
        prop_assert!(msgs[1] <= msgs[2] || msgs[1] == msgs[2]);
    }

    #[test]
    fn grid_factor_roundtrips(p in 1u64..4096, rank in 1usize..4) {
        let g = Grid::factor(p, rank);
        prop_assert_eq!(g.procs(), p);
        prop_assert_eq!(g.dims.len(), rank);
        // Balanced: max/min ratio bounded by the largest prime factor.
        let mx = *g.dims.iter().max().unwrap();
        let mn = *g.dims.iter().min().unwrap();
        prop_assert!(mx / mn <= p, "degenerate factorization {:?}", g.dims);
    }
}
