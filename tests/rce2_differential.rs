//! Differential suite for the `+rce2` offset-lattice redundancy pass.
//!
//! The pass rewrites stencil programs aggressively — materializing shared
//! subexpressions, redirecting statements to shifted reuses, hoisting
//! loop-invariant statements — so this harness sweeps generated
//! stencil-shaped programs and the paper benchmarks through every
//! combination of cleanup suffix and execution engine and insists the
//! checksums stay *bit-identical* to the unoptimized interpreter. A
//! second pass runs the translation validator at `always` and asserts the
//! independent rce2 re-checker accepts every recorded rewrite.

use testkit::{genprog, Rng};
use zlang::ir::{Program, ScalarId};
use zpl_fusion::fusion::request::RunRequest;
use zpl_fusion::fusion::verify::Severity;
use zpl_fusion::prelude::*;

/// Generated stencil programs per sweep.
const PROGRAMS: u64 = 25;

/// The level specs the sweep compares against the reference: the paper's
/// headline level with each cleanup suffix combination, plus `+rce2` on
/// an unfused level (rewrites survive into unfused scalarization).
const SPECS: [&str; 5] = [
    "c2+f3",
    "c2+f3+rce",
    "c2+f3+rce2",
    "c2+f3+rce+rce2",
    "baseline+rce2",
];

/// The two checksum scalars every generated program declares first.
fn checksums(out: &RunOutcome) -> (u64, u64) {
    (
        out.scalar(ScalarId(0)).to_bits(),
        out.scalar(ScalarId(1)).to_bits(),
    )
}

/// The O0 reference: baseline level, plain interpreter.
fn reference(program: &Program) -> (u64, u64) {
    let opt = Pipeline::new(Level::Baseline).optimize(program);
    let binding = ConfigBinding::defaults(&opt.scalarized.program);
    let out = Engine::Interp
        .executor(&opt.scalarized, binding)
        .expect("reference compiles")
        .execute(&mut NoopObserver)
        .expect("reference runs");
    checksums(&out)
}

#[test]
fn stencil_programs_agree_at_every_spec_and_engine() {
    for seed in 0..PROGRAMS {
        let src = genprog::generate_stencil(&mut Rng::new(seed));
        let program = zlang::compile(&src)
            .unwrap_or_else(|e| panic!("seed {seed} generated an invalid program: {e}\n{src}"));
        let expect = reference(&program);
        for spec in SPECS {
            let req = RunRequest::new().with_level_spec(spec).unwrap();
            let opt = req.pipeline().optimize(&program);
            let binding = ConfigBinding::defaults(&opt.scalarized.program);
            for engine in Engine::all() {
                let out = engine
                    .executor(&opt.scalarized, binding.clone())
                    .unwrap_or_else(|e| panic!("seed {seed} {spec} {engine}: {e}"))
                    .execute(&mut NoopObserver)
                    .unwrap_or_else(|e| panic!("seed {seed} {spec} {engine}: {e}"));
                assert_eq!(
                    checksums(&out),
                    expect,
                    "seed {seed} at {spec} on {engine} diverged from baseline interp\n{src}"
                );
            }
        }
    }
}

#[test]
fn rce2_rewrites_pass_the_independent_validator() {
    for seed in 0..PROGRAMS {
        let src = genprog::generate_stencil(&mut Rng::new(seed));
        let program = zlang::compile(&src).unwrap();
        let opt = Pipeline::new(Level::C2F3)
            .with_rce2()
            .with_verify(VerifyLevel::Always)
            .optimize(&program);
        let errors: Vec<_> = opt
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(
            errors.is_empty(),
            "seed {seed}: validator rejected rce2 output: {errors:?}\n{src}"
        );
    }
}

/// The re-checker is only worth its keep if it actually rejects bad
/// records: tamper with genuine rewrites in every way a buggy pass could
/// get wrong — the shift amount, the provider array, the replaced
/// expression — and insist each forgery draws an error.
#[test]
fn validator_rejects_injected_illegal_rewrites() {
    use zpl_fusion::fusion::verify::check_rce2;

    let bench = zpl_fusion::workloads::by_name("tomcatv").unwrap();
    let opt = Pipeline::new(Level::C2F3)
        .with_rce2()
        .optimize(&bench.program());
    let info = opt.rce2.as_ref().expect("rce2 ran");
    assert!(!info.rewrites.is_empty(), "tomcatv must yield rewrites");
    assert!(
        check_rce2(&opt.norm, info).is_empty(),
        "genuine records must verify"
    );

    // A wrong shift claims the value lives somewhere it does not.
    let mut tampered = info.clone();
    tampered.rewrites[0].delta[0] += 1;
    assert!(
        !check_rce2(&opt.norm, &tampered).is_empty(),
        "off-by-one delta must be rejected"
    );

    // A wrong provider points the reuse at an unrelated array.
    let mut tampered = info.clone();
    tampered.rewrites[0].provider = zlang::ir::ArrayId(0);
    assert!(
        !check_rce2(&opt.norm, &tampered).is_empty(),
        "wrong provider must be rejected"
    );

    // A forged replaced-expression claims the reuse stands for a value
    // the provider never computed.
    let mut tampered = info.clone();
    let b = tampered.rewrites[0].replaced.clone();
    tampered.rewrites[0].replaced =
        zlang::ir::ArrayExpr::Binary(zlang::ast::BinOp::Add, Box::new(b.clone()), Box::new(b));
    assert!(
        !check_rce2(&opt.norm, &tampered).is_empty(),
        "forged replaced expression must be rejected"
    );

    // A hoist record naming a statement that was never hoisted.
    let mut tampered = info.clone();
    tampered.hoists.push(zpl_fusion::fusion::rce2::Rce2Hoist {
        landing_block: 0,
        landing_stmt: 0,
        array: zlang::ir::ArrayId(0),
        orig_block: 0,
        orig_index: 0,
    });
    assert!(
        !check_rce2(&opt.norm, &tampered).is_empty(),
        "fabricated hoist must be rejected"
    );
}

#[test]
fn benchmarks_agree_at_every_level_with_rce2() {
    for name in ["tomcatv", "simple", "sp"] {
        let bench = zpl_fusion::workloads::by_name(name).unwrap();
        let program = bench.program();
        let n = match bench.rank {
            1 => 128,
            2 => 10,
            _ => 5,
        };
        let expect = {
            let opt = Pipeline::new(Level::Baseline).optimize(&program);
            let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
            binding.set_by_name(&opt.scalarized.program, bench.size_config, n);
            let out = Engine::Interp
                .executor(&opt.scalarized, binding)
                .unwrap()
                .execute(&mut NoopObserver)
                .unwrap();
            out.scalars.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        };
        for level in Level::all() {
            let opt = Pipeline::new(level).with_rce2().optimize(&program);
            let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
            binding.set_by_name(&opt.scalarized.program, bench.size_config, n);
            for engine in Engine::all() {
                let out = engine
                    .executor(&opt.scalarized, binding.clone())
                    .unwrap()
                    .execute(&mut NoopObserver)
                    .unwrap();
                let got: Vec<u64> = out.scalars.iter().map(|s| s.to_bits()).collect();
                assert_eq!(
                    got, expect,
                    "{name} at {level}+rce2 on {engine} diverged from baseline interp"
                );
            }
        }
    }
}
