//! Golden `--emit` snapshots: the scalarized IR for every paper benchmark
//! at `c2+f3` is pinned under `tests/golden/`. Any change to fusion,
//! contraction, loop-structure selection, or the printers shows up as a
//! readable diff here instead of a silent behavior change.
//!
//! Regenerate with `ZLC_BLESS=1 cargo test --test emit_golden`.

use std::path::PathBuf;
use std::process::Command;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn emit(name: &str, source: &str, level: &str, pass: &str) -> String {
    let dir = std::env::temp_dir().join("zlc-emit-golden");
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join(format!("{name}.zl"));
    std::fs::write(&src, source).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_zlc"))
        .args([src.to_str().unwrap(), "--level", level, "--emit", pass])
        .output()
        .expect("zlc runs");
    assert!(
        out.status.success(),
        "{name}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 snapshot")
}

fn emit_scalarize(name: &str, source: &str) -> String {
    emit(name, source, "c2+f3", "scalarize")
}

#[test]
fn benchmark_snapshots_match_golden_files() {
    let bless = std::env::var_os("ZLC_BLESS").is_some();
    for bench in zpl_fusion::workloads::all() {
        let got = emit_scalarize(bench.name, bench.source);
        let path = golden_dir().join(format!("{}.c2f3.scalarize.txt", bench.name));
        if bless {
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: missing golden file {path:?}: {e}", bench.name));
        assert_eq!(
            got, want,
            "{}: snapshot drifted from {path:?}; run with ZLC_BLESS=1 to re-bless",
            bench.name
        );
    }
}

/// The `+rce2` rewrite records for the stencil benchmarks: which
/// subexpressions the offset-lattice analysis proved redundant, where the
/// shared temporaries were materialized, and what was hoisted. Pinned so a
/// change to the analysis (facts found, widening, scoring) surfaces as a
/// readable diff.
#[test]
fn rce2_snapshots_match_golden_files() {
    let bless = std::env::var_os("ZLC_BLESS").is_some();
    for name in ["tomcatv", "simple", "sp"] {
        let bench = zpl_fusion::workloads::by_name(name).unwrap();
        let got = emit(bench.name, bench.source, "c2+f3+rce2", "rce2");
        let path = golden_dir().join(format!("{}.c2f3rce2.rce2.txt", bench.name));
        if bless {
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{name}: missing golden file {path:?}: {e}"));
        assert_eq!(
            got, want,
            "{name}: snapshot drifted from {path:?}; run with ZLC_BLESS=1 to re-bless"
        );
    }
}
