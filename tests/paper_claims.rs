//! The paper's headline claims, checked end to end against the simulated
//! reproduction:
//!
//! * "our scheme typically yields runtime improvements of greater than 20%"
//! * "and sometimes up to 400%" (EP's fully-contracted loop)
//! * "the common practice of contracting only compiler-introduced arrays
//!   is insufficient" (c1 ≪ c2)
//! * "superior memory use" / "EP runs in constant memory"
//! * "if a choice is to be made, fusion for contraction should be favored"

use zpl_fusion::par::{simulate, CommPolicy, ExecConfig};
use zpl_fusion::prelude::*;
use zpl_fusion::sim::presets::{paragon, t3e, MachineKind};

fn run(bench: &zpl_fusion::workloads::Benchmark, level: Level, procs: u64) -> f64 {
    let opt = Pipeline::new(level).optimize(&bench.program());
    let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
    let n = match bench.rank {
        1 => 4096,
        2 => 32,
        _ => 8,
    };
    binding.set_by_name(&opt.scalarized.program, bench.size_config, n);
    let cfg = ExecConfig {
        machine: t3e(),
        procs,
        policy: CommPolicy::default(),
        engine: Engine::default(),
        threads: 0,
        limits: loopir::ExecLimits::none(),
    };
    simulate(&opt.scalarized, binding, &cfg).unwrap().total_ns
}

#[test]
fn c2_typically_improves_more_than_20_percent() {
    let mut above_20 = 0;
    let mut total = 0;
    for bench in zpl_fusion::workloads::all() {
        let base = run(&bench, Level::Baseline, 16);
        let c2 = run(&bench, Level::C2, 16);
        let improvement = 100.0 * (base - c2) / base;
        assert!(improvement > 0.0, "{}: {improvement}", bench.name);
        if improvement > 20.0 {
            above_20 += 1;
        }
        total += 1;
    }
    assert!(
        above_20 * 2 > total,
        "typical improvement must exceed 20%: {above_20}/{total}"
    );
}

#[test]
fn ep_reaches_multi_x_speedup() {
    // The paper reports "up to 400%" on one application; EP — where every
    // array contracts — is our extreme case and must speed up manyfold.
    let bench = zpl_fusion::workloads::by_name("ep").unwrap();
    let base = run(&bench, Level::Baseline, 1);
    let c2 = run(&bench, Level::C2, 1);
    assert!(base / c2 > 4.0, "EP speedup {:.2}x", base / c2);
}

#[test]
fn compiler_only_contraction_is_insufficient() {
    // Section 5.4: "transformation c1 does not sufficiently address the
    // problem" — across the suite, c2's improvement must dwarf c1's.
    let mut c1_total = 0.0;
    let mut c2_total = 0.0;
    for bench in zpl_fusion::workloads::all() {
        let base = run(&bench, Level::Baseline, 16);
        c1_total += 100.0 * (base - run(&bench, Level::C1, 16)) / base;
        c2_total += 100.0 * (base - run(&bench, Level::C2, 16)) / base;
    }
    assert!(
        c2_total > 3.0 * c1_total,
        "c2 ({c2_total:.1}) must far exceed c1 ({c1_total:.1})"
    );
}

#[test]
fn ep_runs_in_constant_memory_after_contraction() {
    let bench = zpl_fusion::workloads::by_name("ep").unwrap();
    let opt = Pipeline::new(Level::C2).optimize(&bench.program());
    for n in [256, 4096, 65536] {
        let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
        binding.set_by_name(&opt.scalarized.program, "n", n);
        for engine in Engine::all() {
            let mut exec = engine.executor(&opt.scalarized, binding.clone()).unwrap();
            let out = exec.execute(&mut NoopObserver).unwrap();
            assert_eq!(out.stats.peak_bytes, 0, "{engine}, n = {n}");
        }
    }
}

#[test]
fn contraction_never_worsens_memory_or_time() {
    for bench in zpl_fusion::workloads::all() {
        for machine in [t3e(), paragon()] {
            let run_at = |level: Level| {
                let opt = Pipeline::new(level).optimize(&bench.program());
                let binding = ConfigBinding::defaults(&opt.scalarized.program);
                let cfg = ExecConfig {
                    machine: machine.clone(),
                    procs: 1,
                    policy: CommPolicy::default(),
                    engine: Engine::default(),
                    threads: 0,
                    limits: loopir::ExecLimits::none(),
                };
                simulate(&opt.scalarized, binding, &cfg).unwrap()
            };
            let base = run_at(Level::Baseline);
            let c2 = run_at(Level::C2);
            assert!(
                c2.run.peak_bytes <= base.run.peak_bytes,
                "{} on {}: memory grew",
                bench.name,
                machine.name
            );
            assert!(
                c2.total_ns <= base.total_ns,
                "{} on {}: time grew",
                bench.name,
                machine.name
            );
        }
    }
}

#[test]
fn figure6_zpl_strictly_dominates_commercial_models() {
    let m = zpl_fusion::models::behavior_matrix();
    let zpl_row = m
        .rows
        .iter()
        .find(|r| r.model.name.contains("ZPL"))
        .expect("ZPL row");
    for row in &m.rows {
        for (i, &v) in row.verdicts.iter().enumerate() {
            assert!(
                !v || zpl_row.verdicts[i],
                "{} passes {} but ZPL does not",
                row.model.name,
                m.fragments[i].id
            );
        }
    }
    assert!(zpl_row.verdicts.iter().all(|&v| v));
}

#[test]
fn favoring_fusion_wins_on_the_machines_with_offloaded_messaging() {
    // Section 5.5's conclusion, checked on the T3E and Paragon models at
    // p = 16 over the communication-sensitive benchmarks.
    use zpl_fusion::par::comm::favor_comm_pairs;
    for kind in [MachineKind::T3e, MachineKind::Paragon] {
        let machine = kind.machine();
        let mut fusion_total = 0.0;
        let mut comm_total = 0.0;
        for name in ["tomcatv", "sp", "simple"] {
            let bench = zpl_fusion::workloads::by_name(name).unwrap();
            let program = bench.program();
            let run_policy = |favor_comm: bool| {
                let pipeline = if favor_comm {
                    Pipeline::new(Level::C2F3).with_forbidden(favor_comm_pairs)
                } else {
                    Pipeline::new(Level::C2F3)
                };
                let opt = pipeline.optimize(&program);
                let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
                let n = if bench.rank == 2 { 32 } else { 8 };
                binding.set_by_name(&opt.scalarized.program, bench.size_config, n);
                let cfg = ExecConfig {
                    machine: machine.clone(),
                    procs: 16,
                    policy: CommPolicy::default(),
                    engine: Engine::default(),
                    threads: 0,
                    limits: loopir::ExecLimits::none(),
                };
                simulate(&opt.scalarized, binding, &cfg).unwrap().total_ns
            };
            fusion_total += run_policy(false);
            comm_total += run_policy(true);
        }
        assert!(
            fusion_total < comm_total,
            "{}: favoring fusion must win ({fusion_total} vs {comm_total})",
            kind.name()
        );
    }
}
