//! End-to-end semantic equivalence: every benchmark, at every optimization
//! level, under every machine observer, produces identical results.
//! Transformations must never change what a program computes — only how.

use zpl_fusion::prelude::*;
use zpl_fusion::sim::presets::MachineKind;
use zpl_fusion::sim::MemSim;

/// Runs a benchmark at a level and returns all scalar outputs.
fn outputs(bench: &zpl_fusion::workloads::Benchmark, level: Level, n: i64) -> Vec<f64> {
    let opt = Pipeline::new(level).optimize(&bench.program());
    let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
    binding.set_by_name(&opt.scalarized.program, bench.size_config, n);
    let mut exec = Engine::default()
        .executor(&opt.scalarized, binding)
        .unwrap();
    exec.execute(&mut NoopObserver)
        .expect("benchmark executes")
        .scalars
}

fn test_size(bench: &zpl_fusion::workloads::Benchmark) -> i64 {
    match bench.rank {
        1 => 1024,
        2 => 16,
        _ => 6,
    }
}

#[test]
fn every_level_preserves_every_benchmark() {
    for bench in zpl_fusion::workloads::all() {
        let n = test_size(&bench);
        let reference = outputs(&bench, Level::Baseline, n);
        assert!(
            reference.iter().any(|&v| v != 0.0),
            "{}: baseline produced all-zero outputs",
            bench.name
        );
        for level in Level::all() {
            let got = outputs(&bench, level, n);
            // The named scalars (shared prefix) must agree bit-for-bit;
            // hidden reduction temporaries may differ in count.
            let shared = reference.len().min(got.len());
            assert_eq!(
                &got[..shared],
                &reference[..shared],
                "{} at {level} diverges",
                bench.name
            );
        }
    }
}

#[test]
fn observers_do_not_perturb_results() {
    // The cache simulator observes the address stream; it must not change
    // any computed value.
    let bench = zpl_fusion::workloads::by_name("tomcatv").unwrap();
    let opt = Pipeline::new(Level::C2).optimize(&bench.program());
    let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
    binding.set_by_name(&opt.scalarized.program, "n", 12);

    for engine in Engine::all() {
        let mut plain = engine.executor(&opt.scalarized, binding.clone()).unwrap();
        let reference = plain.execute(&mut NoopObserver).unwrap().scalars;

        for kind in MachineKind::all() {
            let m = kind.machine();
            let mut sim = MemSim::new(m.l1, m.l2);
            let mut exec = engine.executor(&opt.scalarized, binding.clone()).unwrap();
            let observed = exec.execute(&mut sim).unwrap().scalars;
            assert_eq!(reference, observed, "{engine} on {}", kind.name());
            assert!(
                sim.stats().accesses > 0,
                "the observer actually saw traffic"
            );
        }
    }
}

#[test]
fn problem_size_override_changes_work_not_semantics_shape() {
    let bench = zpl_fusion::workloads::by_name("frac").unwrap();
    let opt = Pipeline::new(Level::C2).optimize(&bench.program());
    let run = |n: i64| {
        let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
        binding.set_by_name(&opt.scalarized.program, "n", n);
        let mut exec = Engine::default()
            .executor(&opt.scalarized, binding)
            .unwrap();
        let out = exec.execute(&mut NoopObserver).unwrap();
        (
            out.stats.points,
            out.scalar(opt.scalarized.program.scalar_by_name("area").unwrap()),
        )
    };
    let (pts16, area16) = run(16);
    let (pts32, area32) = run(32);
    assert!(pts32 > pts16 * 3, "work scales ~quadratically");
    // Interior fraction is roughly resolution-independent.
    let f16 = area16 / (16.0 * 16.0);
    let f32 = area32 / (32.0 * 32.0);
    assert!((f16 - f32).abs() < 0.15, "interior fraction {f16} vs {f32}");
}

#[test]
fn favor_comm_policy_is_also_semantics_preserving() {
    use zpl_fusion::par::comm::favor_comm_pairs;
    for bench in zpl_fusion::workloads::all() {
        let n = test_size(&bench);
        let program = bench.program();
        let ff = Pipeline::new(Level::C2F3).optimize(&program);
        let fc = Pipeline::new(Level::C2F3)
            .with_forbidden(favor_comm_pairs)
            .optimize(&program);
        let run = |opt: &zpl_fusion::fusion::pipeline::Optimized| {
            let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
            binding.set_by_name(&opt.scalarized.program, bench.size_config, n);
            let mut exec = Engine::default()
                .executor(&opt.scalarized, binding)
                .unwrap();
            exec.execute(&mut NoopObserver).unwrap().scalars
        };
        assert_eq!(run(&ff), run(&fc), "{}", bench.name);
    }
}
