//! Property-based tests over randomly generated array programs:
//!
//! * every optimization level preserves semantics exactly, on both
//!   execution engines;
//! * `FUSION-FOR-CONTRACTION` always produces a valid fusion partition
//!   (Definition 5, re-checked independently);
//! * contraction decisions satisfy Definition 6's observable consequence —
//!   contracted arrays vanish from the scalarized code;
//! * `FIND-LOOP-STRUCTURE` results legalize every dependence;
//! * the source printer round-trips through the compiler.

use testkit::{cases, Rng};
use zpl_fusion::fusion::asdg;
use zpl_fusion::fusion::depvec::Udv;
use zpl_fusion::fusion::fusion::{FusionCtx, Partition};
use zpl_fusion::fusion::loopstruct::find_loop_structure;
use zpl_fusion::fusion::normal;
use zpl_fusion::fusion::pipeline::{Level, Pipeline};
use zpl_fusion::prelude::*;

/// One randomly generated statement: which array it writes and an
/// expression tree over reads of earlier-declared arrays.
#[derive(Debug, Clone)]
struct GenStmt {
    target: usize,
    rhs: GenExpr,
}

#[derive(Debug, Clone)]
enum GenExpr {
    Const(f64),
    /// Read array `idx` at offset (di, dj) ∈ {-1,0,1}².
    Read(usize, i64, i64),
    Index(u8),
    Add(Box<GenExpr>, Box<GenExpr>),
    Mul(Box<GenExpr>, Box<GenExpr>),
    Sub(Box<GenExpr>, Box<GenExpr>),
}

fn gen_expr(rng: &mut Rng, arrays: usize, depth: u32) -> GenExpr {
    if depth == 0 || rng.below(3) == 0 {
        match rng.below(3) {
            0 => GenExpr::Const(rng.f64(-4.0, 4.0)),
            1 => GenExpr::Read(rng.below(arrays), rng.range(-1, 1), rng.range(-1, 1)),
            _ => GenExpr::Index(rng.below(2) as u8),
        }
    } else {
        let a = Box::new(gen_expr(rng, arrays, depth - 1));
        let b = Box::new(gen_expr(rng, arrays, depth - 1));
        match rng.below(3) {
            0 => GenExpr::Add(a, b),
            1 => GenExpr::Mul(a, b),
            _ => GenExpr::Sub(a, b),
        }
    }
}

fn render_expr(e: &GenExpr, names: &[String]) -> String {
    match e {
        GenExpr::Const(v) => format!("{v:?}"),
        GenExpr::Read(a, 0, 0) => names[*a].clone(),
        GenExpr::Read(a, i, j) => format!("{}@[{i},{j}]", names[*a]),
        GenExpr::Index(0) => "index1".into(),
        GenExpr::Index(_) => "index2".into(),
        GenExpr::Add(a, b) => format!("({} + {})", render_expr(a, names), render_expr(b, names)),
        GenExpr::Mul(a, b) => {
            // Keep magnitudes bounded: multiply by a damped factor.
            format!(
                "({} * 0.125 * {})",
                render_expr(a, names),
                render_expr(b, names)
            )
        }
        GenExpr::Sub(a, b) => format!("({} - {})", render_expr(a, names), render_expr(b, names)),
    }
}

/// Renders a generated block as a complete program. All arrays are
/// declared over the halo region so every `@` read is in bounds.
fn render_program(arrays: usize, stmts: &[GenStmt]) -> String {
    let names: Vec<String> = (0..arrays).map(|i| format!("V{i}")).collect();
    let mut src = String::from("program gen;\nconfig n : int = 7;\n");
    src.push_str("region RH = [0..n+1, 0..n+1];\nregion R = [1..n, 1..n];\n");
    for n in &names {
        src.push_str(&format!("var {n} : [RH] float;\n"));
    }
    src.push_str("var chk : float;\nbegin\n");
    for s in stmts {
        src.push_str(&format!(
            "  [R] {} := {};\n",
            names[s.target],
            render_expr(&s.rhs, &names)
        ));
    }
    // Checksum over everything so all arrays are live-out candidates or not
    // purely dead.
    let sum = names.join(" + ");
    src.push_str(&format!("  chk := +<< [R] {sum};\n"));
    src.push_str("end\n");
    src
}

fn gen_block(rng: &mut Rng, max_arrays: usize, max_stmts: usize) -> (usize, Vec<GenStmt>) {
    let arrays = rng.range(2, max_arrays as i64) as usize;
    let count = rng.range(1, max_stmts as i64) as usize;
    let stmts = (0..count)
        .map(|_| GenStmt {
            target: rng.below(arrays),
            rhs: gen_expr(rng, arrays, 2),
        })
        .collect();
    (arrays, stmts)
}

fn checksum(src: &str, level: Level, engine: Engine) -> f64 {
    let program = zpl_fusion::lang::compile(src).expect("generated program compiles");
    let opt = Pipeline::new(level).optimize(&program);
    let binding = ConfigBinding::defaults(&opt.scalarized.program);
    let mut exec = engine
        .executor(&opt.scalarized, binding)
        .expect("engine compiles");
    let outcome = exec
        .execute(&mut NoopObserver)
        .expect("generated program executes");
    outcome.scalar(opt.scalarized.program.scalar_by_name("chk").unwrap())
}

#[test]
fn all_levels_preserve_random_programs() {
    cases(48, 0x1eef, |rng| {
        let (arrays, stmts) = gen_block(rng, 5, 8);
        let src = render_program(arrays, &stmts);
        let expect = checksum(&src, Level::Baseline, Engine::Interp);
        assert!(expect.is_finite(), "baseline diverged: {src}");
        for level in Level::all() {
            for engine in Engine::all() {
                let got = checksum(&src, level, engine);
                // Element-wise results are bit-exact; the checksum reduction
                // may be *reassociated* when its cluster's loop structure is
                // reversed or interchanged (reductions are associative by
                // language definition), so compare with a tight relative
                // tolerance.
                let tol = 1e-9 * expect.abs().max(1.0);
                assert!(
                    (got - expect).abs() <= tol,
                    "level {level} on {engine}: {got} != {expect}\n{src}"
                );
            }
        }
    });
}

#[test]
fn fusion_partitions_are_valid() {
    cases(48, 0xfa51, |rng| {
        let (arrays, stmts) = gen_block(rng, 5, 10);
        let src = render_program(arrays, &stmts);
        let program = zpl_fusion::lang::compile(&src).unwrap();
        let np = normal::normalize(&program);
        let candidates = normal::contraction_candidates(&np);
        for (bi, block) in np.blocks.iter().enumerate() {
            let g = asdg::build(&np.program, block);
            let ctx = FusionCtx::new(&np.program, block, &g);
            let mut part = Partition::trivial(g.n);
            let mut defs = Vec::new();
            for (ai, c) in candidates.iter().enumerate() {
                if *c == Some(bi) {
                    defs.extend(g.defs_of(zpl_fusion::lang::ir::ArrayId(ai as u32)));
                }
            }
            let defs = zpl_fusion::fusion::weights::sort_by_weight(
                &np.program,
                block,
                &g,
                defs,
                &np.default_binding(),
            );
            ctx.fusion_for_contraction(&mut part, &defs);
            assert!(
                ctx.validate(&part).is_ok(),
                "{:?}\n{src}",
                ctx.validate(&part)
            );
            // Locality fusion and pairwise fusion must also stay valid.
            let all: Vec<_> = (0..g.defs.len() as u32)
                .map(zpl_fusion::fusion::asdg::DefId)
                .collect();
            let all = zpl_fusion::fusion::weights::sort_by_weight(
                &np.program,
                block,
                &g,
                all,
                &np.default_binding(),
            );
            ctx.fusion_for_locality(&mut part, &all);
            assert!(ctx.validate(&part).is_ok());
            ctx.pairwise_fusion(&mut part);
            assert!(ctx.validate(&part).is_ok());
        }
    });
}

#[test]
fn contracted_arrays_vanish_from_scalarized_code() {
    cases(48, 0xc0a7, |rng| {
        let (arrays, stmts) = gen_block(rng, 5, 8);
        let src = render_program(arrays, &stmts);
        let program = zpl_fusion::lang::compile(&src).unwrap();
        let opt = Pipeline::new(Level::C2).optimize(&program);
        let live = opt.scalarized.live_arrays();
        for &a in &opt.contracted {
            assert!(!live.contains(&a));
        }
        // And vice versa: everything referenced but not contracted is live.
        assert_eq!(
            live.len() + opt.contracted.len(),
            opt.report.before(),
            "accounting must balance"
        );
    });
}

#[test]
fn find_loop_structure_legalizes_or_rejects() {
    cases(48, 0x100b, |rng| {
        let count = rng.below(12);
        let deps: Vec<Udv> = (0..count)
            .map(|_| Udv(vec![rng.range(-3, 3), rng.range(-3, 3), rng.range(-3, 3)]))
            .collect();
        match find_loop_structure(&deps, 3) {
            Some(p) => {
                assert!(zpl_fusion::loops::ir::is_valid_structure(&p, 3));
                for u in &deps {
                    assert!(u.preserved_by(&p), "{u} not preserved by {p:?}");
                }
            }
            None => {
                // The identity and simple reversals must indeed all fail —
                // spot-check a few structures to build confidence that
                // rejection is not spurious.
                for p in [[1i8, 2, 3], [-1, 2, 3], [2, 1, 3], [3, -2, -1]] {
                    assert!(
                        deps.iter().any(|u| !u.preserved_by(&p)),
                        "{p:?} legalizes everything but NOSOLUTION was returned"
                    );
                }
            }
        }
    });
}

#[test]
fn dimension_contraction_preserves_random_programs() {
    cases(48, 0xd1c0, |rng| {
        let (arrays, stmts) = gen_block(rng, 5, 10);
        let src = render_program(arrays, &stmts);
        let program = zpl_fusion::lang::compile(&src).unwrap();
        let run = |dimc: bool| {
            let pipeline = if dimc {
                Pipeline::new(Level::C2).with_dimension_contraction()
            } else {
                Pipeline::new(Level::C2)
            };
            let opt = pipeline.optimize(&program);
            let binding = ConfigBinding::defaults(&opt.scalarized.program);
            let mut exec = Engine::Vm.executor(&opt.scalarized, binding).unwrap();
            let outcome = exec.execute(&mut NoopObserver).expect("executes");
            let chk = outcome.scalar(opt.scalarized.program.scalar_by_name("chk").unwrap());
            (chk, outcome.stats.peak_bytes)
        };
        let (plain, mem_plain) = run(false);
        let (dimc, mem_dimc) = run(true);
        let tol = 1e-9 * plain.abs().max(1.0);
        assert!((plain - dimc).abs() <= tol, "{plain} != {dimc}\n{src}");
        assert!(
            mem_dimc <= mem_plain,
            "collapse must never grow memory\n{src}"
        );
    });
}

#[test]
fn printed_source_roundtrips() {
    cases(48, 0x9127, |rng| {
        let (arrays, stmts) = gen_block(rng, 4, 6);
        let src = render_program(arrays, &stmts);
        let p1 = zpl_fusion::lang::compile(&src).unwrap();
        let printed = zpl_fusion::lang::pretty::source(&p1);
        let p2 = zpl_fusion::lang::compile(&printed)
            .unwrap_or_else(|e| panic!("printed source does not compile: {e}\n{printed}"));
        assert_eq!(&p1, &p2, "round-trip changed the program:\n{}", printed);
    });
}
