//! Edge cases and failure injection across the whole stack, exercised
//! through both execution engines.

use zpl_fusion::par::{simulate, CommPolicy, ExecConfig};
use zpl_fusion::prelude::*;
use zpl_fusion::sim::presets::t3e;

/// Runs a scalarized program on one engine and returns the outcome.
fn execute(
    opt: &zpl_fusion::fusion::pipeline::Optimized,
    binding: ConfigBinding,
    engine: Engine,
) -> Result<RunOutcome, zpl_fusion::loops::ExecError> {
    engine
        .executor(&opt.scalarized, binding)?
        .execute(&mut NoopObserver)
}

#[test]
fn empty_program_optimizes_to_nothing() {
    let p = zlang::compile("program empty; begin end").unwrap();
    for level in Level::all() {
        let opt = Pipeline::new(level).optimize(&p);
        assert_eq!(opt.scalarized.stmts.len(), 0);
        assert_eq!(opt.report.before(), 0);
        for engine in Engine::all() {
            let binding = ConfigBinding::defaults(&opt.scalarized.program);
            let out = execute(&opt, binding, engine).unwrap();
            assert_eq!(out.stats.points, 0, "{engine}");
        }
    }
}

#[test]
fn scalar_only_program_works() {
    let p = zlang::compile(
        "program s; var a, b : float; var k : int; begin \
         a := 1.5; for k := 1 to 4 do b := b + a * 2.0; end; end",
    )
    .unwrap();
    let opt = Pipeline::new(Level::C2F4).optimize(&p);
    for engine in Engine::all() {
        let binding = ConfigBinding::defaults(&opt.scalarized.program);
        let out = execute(&opt, binding, engine).unwrap();
        assert_eq!(
            out.scalar(opt.scalarized.program.scalar_by_name("b").unwrap()),
            12.0
        );
    }
}

#[test]
fn minimum_problem_sizes_run() {
    // Every benchmark at the smallest size its halos allow.
    for bench in zpl_fusion::workloads::all() {
        let n = 2;
        let opt = Pipeline::new(Level::C2).optimize(&bench.program());
        for engine in Engine::all() {
            let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
            binding.set_by_name(&opt.scalarized.program, bench.size_config, n);
            let out = execute(&opt, binding, engine)
                .unwrap_or_else(|e| panic!("{} ({engine}) at n=2: {e}", bench.name));
            assert!(out.stats.points > 0, "{} ({engine})", bench.name);
        }
    }
}

#[test]
fn empty_region_loop_executes_zero_times() {
    // A region with hi < lo under an override: the nest body must not run.
    let p = zlang::compile(
        "program z; config n : int = 4; region R = [2..n]; var A : [R] float; \
         var s : float; begin [R] A := 1.0; s := +<< [R] A; end",
    )
    .unwrap();
    let opt = Pipeline::new(Level::Baseline).optimize(&p);
    for engine in Engine::all() {
        let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
        binding.set_by_name(&opt.scalarized.program, "n", 1); // 2..1 is empty
        let out = execute(&opt, binding, engine).unwrap();
        assert_eq!(out.stats.points, 0, "{engine}");
        assert_eq!(out.checksum(), 0.0, "{engine}: empty sum is the identity");
    }
}

#[test]
fn out_of_region_access_is_reported_not_crashed() {
    let p = zlang::compile(
        "program o; config n : int = 4; region R = [1..n]; var A, B : [R] float; \
         begin [R] B := A@[-1]; end",
    )
    .unwrap();
    let opt = Pipeline::new(Level::Baseline).optimize(&p);
    for engine in Engine::all() {
        let binding = ConfigBinding::defaults(&opt.scalarized.program);
        let err = execute(&opt, binding, engine).unwrap_err();
        assert!(err.message.contains("halo"), "{engine}: {err}");
    }
}

#[test]
fn dimension_contracted_programs_simulate_in_parallel() {
    // The Outer construct must flow through the parallel executor and the
    // cache simulator without disturbing results.
    let bench = zpl_fusion::workloads::by_name("sp").unwrap();
    let plain = Pipeline::new(Level::C2).optimize(&bench.program());
    let dimc = Pipeline::new(Level::C2)
        .with_dimension_contraction()
        .optimize(&bench.program());
    let run = |opt: &zpl_fusion::fusion::pipeline::Optimized| {
        let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
        binding.set_by_name(&opt.scalarized.program, "n", 6);
        let cfg = ExecConfig {
            machine: t3e(),
            procs: 8,
            policy: CommPolicy::default(),
            engine: Engine::default(),
            threads: 0,
            limits: loopir::ExecLimits::none(),
        };
        simulate(&opt.scalarized, binding, &cfg).unwrap()
    };
    let (a, b) = (run(&plain), run(&dimc));
    assert!(b.run.peak_bytes < a.run.peak_bytes);
    assert!(b.total_ns > 0.0);
    // Same arithmetic despite the different schedule.
    assert_eq!(a.run.flops, b.run.flops);
}

#[test]
fn config_overrides_by_name_reject_unknown_names() {
    let p = zlang::compile("program c; config n : int = 4; begin end").unwrap();
    let mut binding = ConfigBinding::defaults(&p);
    assert!(binding.set_by_name(&p, "n", 9));
    assert!(!binding.set_by_name(&p, "bogus", 1));
}

#[test]
fn deeply_nested_control_flow_survives_all_levels() {
    let p = zlang::compile(
        "program d; config n : int = 4; region R = [1..n]; var A, B : [R] float; \
         var s : float; var i : int; var j : int; begin \
         for i := 1 to 2 do \
           for j := 1 to 2 do \
             if s >= 0.0 then [R] A := A + 1.0; [R] B := A; else [R] B := 0.0; end; \
             s := +<< [R] B; \
           end; \
         end; end",
    )
    .unwrap();
    let mut expect = None;
    for level in Level::all() {
        let opt = Pipeline::new(level).optimize(&p);
        for engine in Engine::all() {
            let binding = ConfigBinding::defaults(&opt.scalarized.program);
            let out = execute(&opt, binding, engine).unwrap();
            let s = out.scalar(opt.scalarized.program.scalar_by_name("s").unwrap());
            match expect {
                None => expect = Some(s),
                Some(e) => assert_eq!(s, e, "level {level}, engine {engine}"),
            }
        }
    }
    assert_eq!(
        expect.unwrap(),
        16.0,
        "4 iterations x 4 elements, accumulated A"
    );
}
