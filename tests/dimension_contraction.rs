//! End-to-end tests for the dimension-contraction extension (the paper's
//! Section 5.2 SP deficiency): semantics must be exactly preserved while
//! the collapsed arrays' memory disappears.

use zpl_fusion::fusion::pipeline::Optimized;
use zpl_fusion::prelude::*;

/// An SP-style sweep chain: T is produced by an x-direction stencil and
/// consumed by a y-direction stencil — full fusion is illegal, but the
/// row dimension is flow-flat.
const SWEEP: &str = "program sweep; config n : int = 24; \
    region GH = [0..n+1, 0..n+1]; region R = [1..n, 1..n]; \
    var A : [GH] float; var T, U : [GH] float; var OUT : [R] float; var s : float; \
    begin \
      [GH] A := index1 * 0.3 + sin(index2 * 0.7); \
      [R] T := A@[0,-1] + 2.0 * A + A@[0,1]; \
      [R] U := T@[0,-1] + 2.0 * T + T@[0,1]; \
      [R] OUT := U@[0,-1] + U@[0,1]; \
      s := +<< [R] OUT; end";

fn run(opt: &Optimized, n: i64) -> (f64, u64) {
    let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
    binding.set_by_name(&opt.scalarized.program, "n", n);
    let mut exec = Engine::default()
        .executor(&opt.scalarized, binding)
        .unwrap();
    let out = exec.execute(&mut NoopObserver).unwrap();
    (
        out.scalar(opt.scalarized.program.scalar_by_name("s").unwrap()),
        out.stats.peak_bytes,
    )
}

#[test]
fn sweep_chain_preserves_semantics_and_saves_memory() {
    let p = zlang::compile(SWEEP).unwrap();
    let plain = Pipeline::new(Level::C2).optimize(&p);
    let dimc = Pipeline::new(Level::C2)
        .with_dimension_contraction()
        .optimize(&p);

    assert!(dimc.report.dimension_contracted >= 1, "{:?}", dimc.report);

    for n in [8, 16, 24] {
        let (s_plain, mem_plain) = run(&plain, n);
        let (s_dimc, mem_dimc) = run(&dimc, n);
        assert_eq!(s_plain, s_dimc, "n = {n}");
        assert!(
            mem_dimc < mem_plain,
            "n = {n}: collapsed arrays must shrink memory ({mem_dimc} vs {mem_plain})"
        );
    }

    // The collapsed arrays grow O(n) instead of O(n^2): the memory ratio
    // between the two variants must widen with n.
    let (_, p8) = run(&plain, 8);
    let (_, d8) = run(&dimc, 8);
    let (_, p32) = run(&plain, 32);
    let (_, d32) = run(&dimc, 32);
    let r8 = p8 as f64 / d8 as f64;
    let r32 = p32 as f64 / d32 as f64;
    assert!(r32 > r8, "savings must grow with n: {r8:.2} -> {r32:.2}");
}

#[test]
fn every_benchmark_is_preserved_under_dimension_contraction() {
    for bench in zpl_fusion::workloads::all() {
        let n = match bench.rank {
            1 => 512,
            2 => 12,
            _ => 6,
        };
        let program = bench.program();
        let plain = Pipeline::new(Level::C2).optimize(&program);
        let dimc = Pipeline::new(Level::C2)
            .with_dimension_contraction()
            .optimize(&program);
        let outputs = |opt: &Optimized| {
            let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
            binding.set_by_name(&opt.scalarized.program, bench.size_config, n);
            let mut exec = Engine::default()
                .executor(&opt.scalarized, binding)
                .unwrap();
            exec.execute(&mut NoopObserver).unwrap().scalars
        };
        assert_eq!(outputs(&plain), outputs(&dimc), "{}", bench.name);
    }
}

#[test]
fn sp_gains_dimension_contractions() {
    // The motivating benchmark: SP's sweep-stage arrays (R*, S*, S*b) are
    // exactly the class the paper says should contract to lower dimensions.
    let bench = zpl_fusion::workloads::by_name("sp").unwrap();
    let dimc = Pipeline::new(Level::C2)
        .with_dimension_contraction()
        .optimize(&bench.program());
    assert!(
        dimc.report.dimension_contracted >= 5,
        "SP should collapse its sweep stages: {:?}",
        dimc.report
    );
    let plain = Pipeline::new(Level::C2).optimize(&bench.program());
    let mem = |opt: &Optimized| run_mem(opt, 10);
    assert!(
        mem(&dimc) < mem(&plain),
        "{} vs {}",
        mem(&dimc),
        mem(&plain)
    );
}

fn run_mem(opt: &Optimized, n: i64) -> u64 {
    let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
    binding.set_by_name(&opt.scalarized.program, "n", n);
    let mut exec = Engine::default()
        .executor(&opt.scalarized, binding)
        .unwrap();
    exec.execute(&mut NoopObserver).unwrap().stats.peak_bytes
}
