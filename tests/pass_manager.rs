//! Integration tests for the instrumented pass manager: analysis caching,
//! trace instrumentation, and the `+dse` / `+rce` cleanup passes.

use zpl_fusion::fusion::pass::PassId;
use zpl_fusion::fusion::pipeline::Optimized;
use zpl_fusion::prelude::*;

fn outputs(pipeline: &Pipeline, program: &zlang::ir::Program) -> Vec<f64> {
    let opt = pipeline.optimize(program);
    let binding = ConfigBinding::defaults(&opt.scalarized.program);
    let mut exec = Engine::default()
        .executor(&opt.scalarized, binding)
        .unwrap();
    exec.execute(&mut NoopObserver).expect("executes").scalars
}

/// The paper levels never invalidate analyses, so the pass manager must
/// build exactly one ASDG per basic block — even with the translation
/// validator re-checking every stage.
#[test]
fn asdg_built_once_per_block_at_every_level() {
    for bench in zpl_fusion::workloads::all() {
        let program = bench.program();
        for level in Level::all() {
            for verify in [VerifyLevel::Off, VerifyLevel::Always] {
                let opt = Pipeline::new(level).with_verify(verify).optimize(&program);
                assert_eq!(
                    opt.asdg_builds,
                    opt.norm.blocks.len(),
                    "{} at {level} (verify {verify}): ASDG rebuilt",
                    bench.name
                );
            }
        }
    }
}

/// Every run logs one trace per scheduled pass, in schedule order, with
/// monotone non-increasing statement counts (no pass adds statements).
#[test]
fn traces_cover_the_schedule_in_order() {
    let bench = zpl_fusion::workloads::by_name("tomcatv").unwrap();
    let opt = Pipeline::new(Level::C2F3).optimize(&bench.program());
    let ids: Vec<PassId> = opt.passes.iter().map(|t| t.id).collect();
    assert_eq!(ids.first(), Some(&PassId::Normalize));
    let pos = |id| {
        ids.iter()
            .position(|&i| i == id)
            .unwrap_or_else(|| panic!("{id} not scheduled"))
    };
    assert!(pos(PassId::FuseContraction) < pos(PassId::Contract));
    assert!(pos(PassId::Contract) < pos(PassId::FindLoopStructure));
    assert!(pos(PassId::FindLoopStructure) < pos(PassId::Scalarize));
    assert!(pos(PassId::Scalarize) < pos(PassId::VerifyNormalForm));
    // Paper levels never schedule the cleanup passes.
    assert!(!ids.contains(&PassId::Dse) && !ids.contains(&PassId::Rce));
    let stmts: Vec<usize> = opt.passes.iter().map(|t| t.stmts).collect();
    assert!(stmts.windows(2).all(|w| w[0] >= w[1]), "{stmts:?}");
    assert!(opt.passes.iter().any(|t| t.changed));
}

const DSE_SRC: &str = "program dsetest; config n : int = 8; region R = [1..n]; \
                       var A, B : [R] float; var s : float; begin \
                       [R] A := 1.5; [R] B := A + 1.0; [R] B := A * 2.0; \
                       s := +<< [R] B; end";

/// `+dse` removes the dead first store to `B`; the paper levels keep it;
/// the program's observable output is identical either way.
#[test]
fn dse_removes_dead_store_paper_levels_keep_it() {
    let program = zlang::compile(DSE_SRC).unwrap();
    for level in Level::all() {
        let plain = Pipeline::new(level).optimize(&program);
        let cleaned = Pipeline::new(level).with_dse().optimize(&program);
        let final_stmts = |opt: &Optimized| opt.passes.last().unwrap().stmts;
        assert_eq!(final_stmts(&plain), 4, "paper {level} must keep the store");
        assert_eq!(final_stmts(&cleaned), 3, "{level}+dse must drop the store");
        let dse = cleaned
            .passes
            .iter()
            .find(|t| t.id == PassId::Dse)
            .expect("dse scheduled");
        assert!(dse.changed);
        assert_eq!(
            outputs(&Pipeline::new(level), &program),
            outputs(&Pipeline::new(level).with_dse(), &program),
            "{level}: dse changed observable behavior"
        );
    }
}

const RCE_SRC: &str = "program rcetest; config n : int = 8; region R = [1..n]; \
                       var A, B, C : [R] float; var s : float; begin \
                       [R] A := 2.5; [R] B := A + A; [R] C := A + A; \
                       s := +<< [R] (B - C); end";

/// `+rce` rewrites the second `A + A` into a copy of the first; the paper
/// levels recompute it; the program's observable output is identical.
#[test]
fn rce_merges_redundant_computation_paper_levels_recompute() {
    let program = zlang::compile(RCE_SRC).unwrap();
    for level in Level::all() {
        let plain = Pipeline::new(level)
            .with_emit(PassId::Contract)
            .optimize(&program);
        assert!(
            !plain.emitted.unwrap().contains("C := B"),
            "paper {level} must recompute A + A"
        );
        let cleaned = Pipeline::new(level)
            .with_rce()
            .with_emit(PassId::Rce)
            .optimize(&program);
        assert!(
            cleaned.emitted.as_deref().unwrap().contains("[R] C := B"),
            "{level}+rce must forward B:\n{}",
            cleaned.emitted.as_deref().unwrap()
        );
        let rce = cleaned
            .passes
            .iter()
            .find(|t| t.id == PassId::Rce)
            .expect("rce scheduled");
        assert!(rce.changed);
        assert_eq!(
            outputs(&Pipeline::new(level), &program),
            outputs(&Pipeline::new(level).with_rce(), &program),
            "{level}: rce changed observable behavior"
        );
    }
}

/// A write between the two computations no longer blocks `+rce` when it
/// provably lands in a disjoint region: the row write to `A` below
/// touches `[1..1]` while both computations read `A` over `[2..n]`.
#[test]
fn rce_sees_through_provably_disjoint_writes() {
    let src = "program rcedisjoint; config n : int = 8; \
               region RA = [1..n]; region R = [2..n]; region ROW = [1..1]; \
               var A : [RA] float; var B, C : [R] float; var s : float; begin \
               [RA] A := 2.5; [R] B := A + A; [ROW] A := 0.0; [R] C := A + A; \
               s := +<< [R] (B - C); end";
    let program = zlang::compile(src).unwrap();
    let cleaned = Pipeline::new(Level::C2)
        .with_rce()
        .with_emit(PassId::Rce)
        .optimize(&program);
    assert!(
        cleaned.emitted.as_deref().unwrap().contains("[R] C := B"),
        "+rce must forward B across the disjoint row write:\n{}",
        cleaned.emitted.as_deref().unwrap()
    );
    assert_eq!(
        outputs(&Pipeline::new(Level::C2), &program),
        outputs(&Pipeline::new(Level::C2).with_rce(), &program),
        "rce changed observable behavior"
    );
    // An overlapping write must still block the rewrite.
    let overlap = src.replace("region ROW = [1..1]", "region ROW = [2..2]");
    let program = zlang::compile(&overlap).unwrap();
    let kept = Pipeline::new(Level::C2)
        .with_rce()
        .with_emit(PassId::Rce)
        .optimize(&program);
    assert!(
        !kept.emitted.as_deref().unwrap().contains("[R] C := B"),
        "+rce must not forward across an overlapping write:\n{}",
        kept.emitted.as_deref().unwrap()
    );
}

/// `+rce2` materializes the shared flux-pair subexpression once and turns
/// both statements into shifted reuses; the paper levels recompute; the
/// observable output is identical, and the rce2 validator is scheduled
/// and clean.
#[test]
fn rce2_materializes_stencil_overlap_paper_levels_recompute() {
    let src = "program rce2test; config n : int = 8; \
               region RH = [0..n, 0..n]; region R = [1..n-1, 1..n-1]; \
               direction e = [0, 1]; direction w = [0, -1]; \
               var U : [RH] float; var F, G : [R] float; var s : float; begin \
               [RH] U := index1 * 2.0 + index2; \
               [R] F := (U@e - U) * 0.5; \
               [R] G := (U - U@w) * 0.5; \
               s := +<< [R] (F + G); end";
    let program = zlang::compile(src).unwrap();
    for level in [Level::Baseline, Level::C2, Level::C2F3] {
        let cleaned = Pipeline::new(level)
            .with_rce2()
            .with_emit(PassId::Rce2)
            .with_verify(VerifyLevel::Always)
            .optimize(&program);
        let snap = cleaned.emitted.as_deref().unwrap();
        assert!(
            snap.contains("rce2: 2 rewrite(s), 1 temp(s)"),
            "{level}+rce2 must materialize the flux pair once:\n{snap}"
        );
        assert!(
            cleaned.diagnostics.is_empty(),
            "{level}+rce2 validator findings: {:?}",
            cleaned.diagnostics
        );
        let info = cleaned.rce2.as_ref().expect("rce2 info recorded");
        assert_eq!(info.rewrites.len(), 2);
        let ids: Vec<PassId> = cleaned.passes.iter().map(|t| t.id).collect();
        assert!(ids.contains(&PassId::Rce2) && ids.contains(&PassId::VerifyRce2));
        assert_eq!(
            outputs(&Pipeline::new(level), &program),
            outputs(&Pipeline::new(level).with_rce2(), &program),
            "{level}: rce2 changed observable behavior"
        );
    }
    // Paper levels do not schedule rce2 or its validator.
    let plain = Pipeline::new(Level::C2F3)
        .with_verify(VerifyLevel::Always)
        .optimize(&program);
    let ids: Vec<PassId> = plain.passes.iter().map(|t| t.id).collect();
    assert!(!ids.contains(&PassId::Rce2) && !ids.contains(&PassId::VerifyRce2));
    assert!(plain.rce2.is_none());
}

/// Cleanup passes start a new mutation epoch when they change something:
/// the ASDGs are rebuilt once afterwards, and exactly once.
#[test]
fn cleanup_passes_invalidate_then_rebuild_once() {
    let program = zlang::compile(DSE_SRC).unwrap();
    let opt = Pipeline::new(Level::C2F3).with_dse().optimize(&program);
    // One build for the DSE decision epoch, one for the post-cleanup epoch.
    assert_eq!(opt.asdg_builds, 2 * opt.norm.blocks.len());
}

/// `with_emit` captures a snapshot after the requested pass and leaves
/// `emitted` empty when the pass is not in the schedule.
#[test]
fn emit_snapshot_presence() {
    let bench = zpl_fusion::workloads::by_name("simple").unwrap();
    let program = bench.program();
    let opt = Pipeline::new(Level::C2F3)
        .with_emit(PassId::Normalize)
        .optimize(&program);
    let snap = opt.emitted.expect("normalize always runs");
    assert!(snap.starts_with("// after normalize\n"), "{snap}");
    let opt = Pipeline::new(Level::C2F3)
        .with_emit(PassId::Dse)
        .optimize(&program);
    assert!(
        opt.emitted.is_none(),
        "dse is not scheduled at paper levels"
    );
}
