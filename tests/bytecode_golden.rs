//! Golden `--print bytecode` snapshots: the superinstruction/lane form of
//! the compiled bytecode for selected paper benchmarks at `c2+f3` is
//! pinned under `tests/golden/`. Any change to the bytecode compiler, the
//! superinstruction peephole, the lane vectorizer, or the disassembler
//! shows up as a readable diff here instead of a silent ISA change.
//!
//! Regenerate with `ZLC_BLESS=1 cargo test --test bytecode_golden`.

use std::path::PathBuf;
use std::process::Command;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn disasm(name: &str, source: &str, engine: &str) -> String {
    let dir = std::env::temp_dir().join("zlc-bytecode-golden");
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join(format!("{name}.zl"));
    std::fs::write(&src, source).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_zlc"))
        .args([
            src.to_str().unwrap(),
            "--level",
            "c2+f3",
            "--engine",
            engine,
            "--print",
            "bytecode",
        ])
        .output()
        .expect("zlc runs");
    assert!(
        out.status.success(),
        "{name}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 snapshot")
}

/// The benchmarks pinned: `simple` (the headline element-wise kernel the
/// ≥4x bar is measured on) and `tomcatv` (stencils, reductions, and a
/// time loop — exercises alias caps and the never-vectorized reduction
/// rule).
const PINNED: [&str; 2] = ["simple", "tomcatv"];

#[test]
fn superfused_bytecode_matches_golden_files() {
    let bless = std::env::var_os("ZLC_BLESS").is_some();
    for name in PINNED {
        let bench = zpl_fusion::workloads::by_name(name).unwrap();
        let got = disasm(bench.name, bench.source, "vm-simd");
        let path = golden_dir().join(format!("{name}.c2f3.bytecode.txt"));
        if bless {
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{name}: missing golden file {path:?}: {e}"));
        assert_eq!(
            got, want,
            "{name}: snapshot drifted from {path:?}; run with ZLC_BLESS=1 to re-bless"
        );
    }
}

#[test]
fn scalar_and_superfused_streams_differ_only_in_encoding() {
    // The plain `vm` disassembly of `simple` must contain no
    // superinstructions, and the `vm-simd` one must contain at least one
    // superinstruction and one simd annotation — the two tiers really are
    // two encodings of the same program.
    let bench = zpl_fusion::workloads::by_name("simple").unwrap();
    let plain = disasm(bench.name, bench.source, "vm");
    let fused = disasm(bench.name, bench.source, "vm-simd");
    for mnemonic in ["ld.ld.bin", "ld.bin", "bin.bin", "bin.st", "ld.st"] {
        assert!(
            !plain.contains(mnemonic),
            "plain bytecode contains superinstruction `{mnemonic}`:\n{plain}"
        );
    }
    assert!(
        plain.contains("0 simd loops"),
        "plain bytecode carries simd annotations:\n{plain}"
    );
    assert!(
        fused.contains("simd s0:"),
        "superfused bytecode has no simd annotation:\n{fused}"
    );
    assert!(
        ["ld.ld.bin", "ld.bin", "bin.bin", "bin.st", "ld.st"]
            .iter()
            .any(|m| fused.contains(m)),
        "superfused bytecode has no superinstructions:\n{fused}"
    );
}
