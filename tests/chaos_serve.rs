//! Chaos serving suite: mixed batches through `serve_with` under injected
//! faults, at 1/2/8 workers.
//!
//! The contract under test is the serving fault model's bottom line:
//! whatever a fault makes the serving layer do — degrade a ladder, retry
//! a transient failure, trip a circuit breaker, shed for overload — every
//! *completed* request must hand back the `f64::to_bits`-identical
//! scalars of a one-shot baseline-interpreter run of *its own* program
//! (no cross-request contamination), and every non-completed request must
//! be accounted with a typed cause attributing the injected site.
//!
//! The seed comes from `CHAOS_SEED` (default 1), like the other chaos
//! suites, so CI can rotate schedules without touching the source.

use fusion_core::breaker::BreakerConfig;
use fusion_core::pipeline::{Level, Pipeline};
use fusion_core::serve::{
    serve, serve_with, Disposition, ServeOptions, ServeRequest, ShedCause, ShedPolicy,
};
use fusion_core::supervisor::CauseKind;
use fusion_core::{CompileCache, RunRequest};
use loopir::{Engine, NoopObserver};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use testkit::faults::{FaultPlan, FaultSite};
use zlang::ir::{ConfigBinding, Program};

/// The worker counts every scenario sweeps.
const WORKERS: [usize; 3] = [1, 2, 8];

/// Four small programs with pairwise-distinct answers, so a result that
/// leaks across requests cannot masquerade as a correct one.
const PROGRAMS: [&str; 4] = [
    "program p0; config n : int = 8; region R = [1..n]; \
     var A, B : [R] float; var s : float; \
     begin [R] A := 2.0; [R] B := A * A + 1.5; s := +<< [R] B; end",
    "program p1; config n : int = 8; region R = [1..n]; \
     var A, B : [R] float; var s : float; \
     begin [R] A := 3.0; [R] B := A + A - 0.25; s := +<< [R] B; end",
    "program p2; config n : int = 8; region R = [1..n]; \
     var A, B, C : [R] float; var s : float; \
     begin [R] A := 1.5; [R] B := A * 4.0 + 2.0; [R] C := B * A; s := +<< [R] C; end",
    "program p3; config n : int = 8; region R = [1..n]; \
     var A, B : [R] float; var s : float; \
     begin [R] A := 0.75; [R] B := A * A * A; s := +<< [R] B; end",
];

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// The O0 reference: baseline level, plain interpreter, no serving layer.
fn reference(program: &Program) -> Vec<u64> {
    let opt = Pipeline::new(Level::Baseline).optimize(program);
    let binding = ConfigBinding::defaults(&opt.scalarized.program);
    let outcome = Engine::Interp
        .executor(&opt.scalarized, binding)
        .expect("reference compiles")
        .execute(&mut NoopObserver)
        .expect("reference runs");
    outcome.scalars.iter().map(|s| s.to_bits()).collect()
}

/// Reference bits per program name; asserts they are pairwise distinct so
/// the contamination check below actually discriminates.
fn references() -> HashMap<String, Vec<u64>> {
    let mut map = HashMap::new();
    for (i, source) in PROGRAMS.iter().enumerate() {
        let program = zlang::compile(source).expect("chaos-serve program compiles");
        map.insert(format!("p{i}"), reference(&program));
    }
    let bits: Vec<&Vec<u64>> = map.values().collect();
    for (i, a) in bits.iter().enumerate() {
        for b in bits.iter().skip(i + 1) {
            assert_ne!(a, b, "reference answers must be pairwise distinct");
        }
    }
    map
}

/// The mixed batch: every program on every engine, `rounds` times, so
/// later rounds hit the cache entries the first round inserted.
fn batch(rounds: usize) -> Vec<ServeRequest> {
    let engines = [
        Engine::Interp,
        Engine::Vm,
        Engine::VmVerified,
        Engine::VmPar,
    ];
    let mut reqs = Vec::new();
    for _ in 0..rounds {
        for (i, source) in PROGRAMS.iter().enumerate() {
            for engine in engines {
                reqs.push(ServeRequest::new(
                    &format!("p{i}"),
                    source,
                    RunRequest::new().with_engine(engine),
                ));
            }
        }
    }
    reqs
}

/// Every completed record must carry its own program's reference bits.
fn assert_uncontaminated(report: &fusion_core::ServeReport, want: &HashMap<String, Vec<u64>>) {
    for r in report.records.iter().filter(|r| r.completed()) {
        assert_eq!(
            &r.scalars_bits,
            &want[&r.name],
            "request {} ({}) diverged from its reference:\n{}",
            r.index,
            r.name,
            report.render()
        );
    }
}

/// The tentpole sweep: each fault site at probability 0.5, at 1/2/8
/// workers. Pipeline and engine faults are absorbed by the ladder; only
/// worker panics and corrupted cache artifacts may fail a request, and
/// when they do the cause must name the injected site.
#[test]
fn injected_faults_never_contaminate_served_results() {
    let want = references();
    let sites = [
        FaultSite::FuseGrow,
        FaultSite::VerifyReject,
        FaultSite::VmTrap,
        FaultSite::CacheCorrupt,
        FaultSite::WorkerPanic,
        FaultSite::ServeStall,
    ];
    for (si, site) in sites.into_iter().enumerate() {
        for workers in WORKERS {
            let cache = Arc::new(CompileCache::new());
            let reqs = batch(2);
            let opts = ServeOptions::new().with_workers(workers).with_faults(
                FaultPlan::new(chaos_seed().wrapping_add((si * 8 + workers) as u64))
                    .with(site, 0.5),
            );
            let report = serve_with(&reqs, &opts, &cache);

            assert_eq!(
                report.completed() + report.failed(),
                reqs.len(),
                "{site} at {workers} workers: every request is accounted:\n{}",
                report.render()
            );
            assert_eq!(
                report.shed(),
                0,
                "{site}: nothing sheds without backpressure"
            );
            assert_uncontaminated(&report, &want);

            match site {
                // A panicked worker or a fully corrupted ladder is an
                // attributed failure naming the injected site.
                FaultSite::WorkerPanic | FaultSite::CacheCorrupt => {
                    for r in &report.records {
                        if let Some(cause) = r.cause() {
                            assert!(
                                cause.message.contains(site.name()),
                                "{site} at {workers} workers: failure not attributed \
                                 to the injected site: {cause}"
                            );
                        }
                    }
                }
                // Everything else the degradation ladder absorbs.
                _ => assert_eq!(
                    report.failed(),
                    0,
                    "{site} at {workers} workers must be absorbed:\n{}",
                    report.render()
                ),
            }
        }
    }
}

/// The breaker lifecycle end to end, deterministically: a warm key whose
/// every cache hit is corrupted trips open within the failure threshold,
/// is quarantined, routes the next request to the reference rung (cache
/// bypassed), then heals through a half-open probe.
#[test]
fn poisoned_key_trips_quarantines_routes_and_heals() {
    let want = references();
    let cache = Arc::new(CompileCache::new());
    let mk = || ServeRequest::new("p0", PROGRAMS[0], RunRequest::new().with_engine(Engine::Vm));

    // Warm the requested rung's key with a clean, fault-free serve.
    let warm = serve(&[mk()], 1, &cache);
    assert_eq!(warm.completed(), 1);

    let opts = ServeOptions::new()
        .with_workers(1)
        .with_breaker(BreakerConfig {
            failure_threshold: 3,
            cooldown: 1,
            success_threshold: 1,
        })
        .with_faults(FaultPlan::new(chaos_seed()).with(FaultSite::CacheCorrupt, 1.0));
    let reqs: Vec<ServeRequest> = (0..6).map(|_| mk()).collect();
    let report = serve_with(&reqs, &opts, &cache);

    // Requests 0-1 degrade past the corrupted hit; request 2 lands the
    // third requested-rung failure, trips the breaker, and quarantines
    // the key — by then every fallback rung is also a corrupted hit, so
    // it fails outright. Request 3 arrives during cooldown and is routed
    // to the reference rung with the cache bypassed; request 4 is the
    // half-open probe that recompiles the quarantined key and closes the
    // breaker; request 5 hits the recompiled (again corrupted) entry.
    assert_eq!(report.breaker.trips, 1, "{}", report.render());
    assert_eq!(report.cache.quarantines, 1, "{}", report.render());
    assert_eq!(
        report.breaker.rejected, 1,
        "one request routed to reference"
    );
    assert_eq!(report.breaker.probes, 1, "{}", report.render());
    assert_eq!(report.breaker.closes, 1, "the probe heals the key");

    let routed: Vec<usize> = report
        .records
        .iter()
        .filter(|r| r.breaker_routed)
        .map(|r| r.index)
        .collect();
    assert_eq!(routed, vec![3], "exactly the cooldown-window request");
    assert!(
        report.records[3].completed(),
        "the reference route serves the request:\n{}",
        report.render()
    );
    for r in &report.records {
        if let Some(cause) = r.cause() {
            assert_eq!(cause.kind, CauseKind::Exec);
            assert!(cause.message.contains("cache-corrupt"), "{cause}");
        }
    }
    assert_uncontaminated(&report, &want);
}

/// Overload with a bounded queue and stalled workers: sheds happen, every
/// shed carries the queue-full cause, and the survivors are still exact.
#[test]
fn overload_sheds_are_typed_and_survivors_exact() {
    let want = references();
    for workers in [2usize, 8] {
        let cache = Arc::new(CompileCache::new());
        let reqs = batch(2);
        let opts = ServeOptions::new()
            .with_workers(workers)
            .with_queue_cap(2)
            .with_shed(ShedPolicy::RejectNewest)
            .with_faults(
                FaultPlan::new(chaos_seed().wrapping_add(workers as u64))
                    .with(FaultSite::ServeStall, 1.0),
            );
        let report = serve_with(&reqs, &opts, &cache);
        assert_eq!(report.completed() + report.shed(), reqs.len());
        assert!(report.shed() >= 1, "{}", report.render());
        for r in &report.records {
            if let Disposition::Shed(cause) = r.disposition {
                assert_eq!(cause, ShedCause::QueueFull);
            }
        }
        assert_uncontaminated(&report, &want);
    }
}

/// Deadlines under load at 8 workers: a request whose deadline expires in
/// (effective) queue wait is shed without ever compiling.
#[test]
fn expired_deadlines_shed_without_compiling_under_load() {
    let cache = Arc::new(CompileCache::new());
    let reqs: Vec<ServeRequest> = batch(1)
        .into_iter()
        .map(|r| r.with_deadline(Duration::from_millis(5)))
        .collect();
    let opts = ServeOptions::new()
        .with_workers(8)
        .with_faults(FaultPlan::new(chaos_seed()).with(FaultSite::ServeStall, 1.0));
    let report = serve_with(&reqs, &opts, &cache);
    assert_eq!(report.completed(), 0);
    assert_eq!(report.shed(), reqs.len());
    for r in &report.records {
        assert_eq!(r.disposition, Disposition::Shed(ShedCause::DeadlineExpired));
    }
    assert_eq!(cache.stats().misses, 0, "expired requests never compile");
}
