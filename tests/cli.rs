//! Integration tests for the `zlc` compiler driver.

use std::process::Command;

fn zlc(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_zlc"))
        .args(args)
        .output()
        .expect("zlc runs");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

fn program_path(name: &str) -> String {
    format!("{}/examples/programs/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn compiles_and_runs_heat() {
    let (stdout, stderr, ok) = zlc(&[
        &program_path("heat.zl"),
        "--print",
        "report",
        "--run",
        "--set",
        "n=16",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("contraction report"), "{stdout}");
    assert!(stdout.contains("NEW"), "{stdout}");
    assert!(stdout.contains("err = "), "{stdout}");
    assert!(stdout.contains("peak"), "{stdout}");
}

#[test]
fn dimension_contraction_flag_collapses_sweep() {
    let (stdout, stderr, ok) = zlc(&[
        &program_path("sweep.zl"),
        "--dimension-contraction",
        "--print",
        "report",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("contracted to a slice"), "{stdout}");
}

#[test]
fn machine_simulation_reports_comm() {
    let (stdout, stderr, ok) = zlc(&[
        &program_path("heat.zl"),
        "--run",
        "--machine",
        "t3e",
        "--procs",
        "16",
        "--set",
        "n=16",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("Cray T3E x16"), "{stdout}");
    assert!(stdout.contains("msgs"), "{stdout}");
}

#[test]
fn print_loops_shows_fused_nests() {
    let (stdout, _, ok) = zlc(&[
        &program_path("fragment5.zl"),
        "--level",
        "c1",
        "--print",
        "loops",
    ]);
    assert!(ok);
    assert!(stdout.contains("for i"), "{stdout}");
    // The offset self-update fuses via loop reversal at c1.
    assert!(stdout.contains("downto"), "{stdout}");
}

#[test]
fn asdg_dot_output() {
    let (stdout, _, ok) = zlc(&[&program_path("sweep.zl"), "--print", "asdg"]);
    assert!(ok);
    assert!(stdout.contains("digraph asdg"), "{stdout}");
    assert!(stdout.contains("flow"), "{stdout}");
}

#[test]
fn verify_flag_reports_clean_examples() {
    for example in ["heat.zl", "sweep.zl", "fragment5.zl"] {
        let (stdout, stderr, ok) = zlc(&[&program_path(example), "--verify"]);
        assert!(ok, "{example}: {stderr}");
        assert!(stdout.contains("verify: ok"), "{example}: {stdout}");
        assert!(stderr.is_empty(), "{example}: {stderr}");
    }
}

#[test]
fn verify_composes_with_run_and_verified_engine() {
    let (stdout, stderr, ok) = zlc(&[
        &program_path("heat.zl"),
        "--verify",
        "--run",
        "--engine",
        "vm-verified",
        "--set",
        "n=16",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("verify: ok"), "{stdout}");
    assert!(stdout.contains("err = "), "{stdout}");
}

#[test]
fn bad_inputs_fail_cleanly() {
    let (_, stderr, ok) = zlc(&["/nonexistent.zl"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");

    let (_, stderr, ok) = zlc(&[&program_path("heat.zl"), "--level", "bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown level"), "{stderr}");

    let (_, stderr, ok) = zlc(&[&program_path("heat.zl"), "--run", "--set", "nonesuch=3"]);
    assert!(!ok);
    assert!(stderr.contains("no config named"), "{stderr}");

    let (_, stderr, ok) = zlc(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn malformed_source_gets_rustc_style_diagnostic() {
    let dir = std::env::temp_dir().join("zlc-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.zl");
    std::fs::write(&path, "program broken\nregion R = [1..n];\n").unwrap();
    let (_, stderr, ok) = zlc(&[path.to_str().unwrap()]);
    assert!(!ok);
    // A rendered diagnostic with a clickable span — no panic, no backtrace.
    assert!(stderr.starts_with("error["), "{stderr}");
    assert!(stderr.contains("--> "), "{stderr}");
    assert!(stderr.contains("broken.zl:"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    assert!(!stderr.contains("RUST_BACKTRACE"), "{stderr}");
}

#[test]
fn unknown_engine_is_a_clean_usage_error() {
    let (_, stderr, ok) = zlc(&[&program_path("heat.zl"), "--run", "--engine", "jit"]);
    assert!(!ok);
    assert!(stderr.contains("unknown engine `jit`"), "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn out_of_range_config_is_a_diagnostic_not_a_panic() {
    let (_, stderr, ok) = zlc(&[
        &program_path("heat.zl"),
        "--run",
        "--set",
        "n=9999999999999",
    ]);
    assert!(!ok);
    assert!(stderr.contains("error[config]"), "{stderr}");
    assert!(stderr.contains("1 TiB"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn supervised_clean_run_reports_no_degradation() {
    let (stdout, stderr, ok) = zlc(&[
        &program_path("heat.zl"),
        "--supervise",
        "--engine",
        "vm-verified",
        "--set",
        "n=16",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("err = "), "{stdout}");
    assert!(stdout.contains("supervised run"), "{stdout}");
    assert!(stdout.contains("attempt 1"), "{stdout}");
    assert!(!stdout.contains("degraded"), "{stdout}");
}

#[test]
fn supervised_run_with_injected_trap_degrades_and_succeeds() {
    let (stdout, stderr, ok) = zlc(&[
        &program_path("heat.zl"),
        "--supervise",
        "--engine",
        "vm-verified",
        "--inject",
        "seed=42,vm-trap",
        "--set",
        "n=16",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("err = "), "{stdout}");
    assert!(stdout.contains("vm-trap"), "{stdout}");
    assert!(stdout.contains("degraded"), "{stdout}");
}

#[test]
fn supervised_zero_fuel_still_produces_the_answer() {
    let (stdout, stderr, ok) = zlc(&[
        &program_path("heat.zl"),
        "--supervise",
        "--fuel",
        "0",
        "--set",
        "n=8",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("err = "), "{stdout}");
    assert!(stdout.contains("fuel exhausted"), "{stdout}");
    assert!(stdout.contains("baseline on interp"), "{stdout}");
}

#[test]
fn supervised_machine_run_prints_sim_line() {
    let (stdout, stderr, ok) = zlc(&[
        &program_path("heat.zl"),
        "--supervise",
        "--machine",
        "t3e",
        "--procs",
        "16",
        "--set",
        "n=16",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("simulated x16"), "{stdout}");
}

#[test]
fn bad_inject_plan_is_a_usage_error() {
    let (_, stderr, ok) = zlc(&[&program_path("heat.zl"), "--inject", "seed=1,warp-core"]);
    assert!(!ok);
    assert!(stderr.contains("bad --inject plan"), "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn emit_dumps_snapshot_after_named_pass() {
    let (stdout, stderr, ok) = zlc(&[
        &program_path("heat.zl"),
        "--level",
        "c2+f3",
        "--emit",
        "scalarize",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.starts_with("// after scalarize\n"), "{stdout}");
    assert!(stdout.contains("for "), "{stdout}");
}

#[test]
fn emit_unknown_pass_is_a_usage_error() {
    let (_, stderr, ok) = zlc(&[&program_path("heat.zl"), "--emit", "no-such-pass"]);
    assert!(!ok);
    assert!(stderr.contains("unknown pass `no-such-pass`"), "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn emit_unscheduled_pass_fails_with_level() {
    let (_, stderr, ok) = zlc(&[&program_path("heat.zl"), "--level", "c2", "--emit", "dse"]);
    assert!(!ok);
    assert!(
        stderr.contains("pass `dse` did not run at level c2"),
        "{stderr}"
    );
}

#[test]
fn level_cleanup_suffixes_schedule_the_passes() {
    let (stdout, stderr, ok) = zlc(&[
        &program_path("heat.zl"),
        "--level",
        "c2+f3+dse+rce",
        "--emit",
        "rce",
        "--run",
        "--set",
        "n=16",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.starts_with("// after rce\n"), "{stdout}");
    assert!(stdout.contains("err = "), "{stdout}");
}

#[test]
fn print_hash_is_stable_across_print_reparse() {
    let (h1, stderr, ok) = zlc(&[&program_path("heat.zl"), "--print", "hash"]);
    assert!(ok, "{stderr}");
    let h1 = h1.trim().to_string();
    assert_eq!(h1.len(), 16, "16 hex digits: {h1}");
    assert!(h1.chars().all(|c| c.is_ascii_hexdigit()), "{h1}");

    // Pretty-print the program, re-parse the printed source: the
    // structural hash must survive the round trip (interned-name
    // invariant), and must differ for a different program.
    let (src, _, ok) = zlc(&[&program_path("heat.zl"), "--print", "source"]);
    assert!(ok);
    let dir = std::env::temp_dir().join("zlc-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("heat_roundtrip.zl");
    std::fs::write(&path, &src).unwrap();
    let (h2, _, ok) = zlc(&[path.to_str().unwrap(), "--print", "hash"]);
    assert!(ok);
    assert_eq!(h1, h2.trim(), "round trip changed the hash");

    let (h3, _, ok) = zlc(&[&program_path("sweep.zl"), "--print", "hash"]);
    assert!(ok);
    assert_ne!(h1, h3.trim());
}

#[test]
fn list_engines_names_every_engine() {
    let (stdout, _, ok) = zlc(&["--list-engines"]);
    assert!(ok);
    for engine in ["interp", "vm", "vm-verified", "vm-par"] {
        assert!(
            stdout.lines().any(|l| l == engine),
            "missing {engine}: {stdout}"
        );
    }
}

#[test]
fn serve_replays_files_and_reports_cache_hits() {
    let (stdout, stderr, ok) = zlc(&[
        "serve",
        &program_path("heat.zl"),
        &program_path("sweep.zl"),
        "--requests",
        "40",
        "--workers",
        "4",
        "--set",
        "n=12",
        "--engine",
        "vm-verified",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("served 40 requests"), "{stdout}");
    assert!(stdout.contains("0 failed"), "{stdout}");
    // 2 distinct programs -> 2 misses, 38 hits (95%).
    assert!(stdout.contains("38 hits, 2 misses"), "{stdout}");
    assert!(stdout.contains("95.0% hit rate"), "{stdout}");
    assert!(stdout.contains("vm-verified"), "{stdout}");
}

#[test]
fn serve_without_files_is_a_usage_error() {
    let (_, stderr, ok) = zlc(&["serve"]);
    assert!(!ok);
    assert!(
        stderr.contains("serve needs at least one input file"),
        "{stderr}"
    );
}

#[test]
fn serve_surfaces_parse_errors_with_the_file_name() {
    let dir = std::env::temp_dir().join("zlc-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("serve_broken.zl");
    std::fs::write(&path, "program nope\n").unwrap();
    let (_, stderr, ok) = zlc(&["serve", path.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("serve_broken.zl"), "{stderr}");
}
