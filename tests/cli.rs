//! Integration tests for the `zlc` compiler driver.

use std::process::Command;

fn zlc(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_zlc"))
        .args(args)
        .output()
        .expect("zlc runs");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

fn program_path(name: &str) -> String {
    format!("{}/examples/programs/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn compiles_and_runs_heat() {
    let (stdout, stderr, ok) = zlc(&[
        &program_path("heat.zl"),
        "--print",
        "report",
        "--run",
        "--set",
        "n=16",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("contraction report"), "{stdout}");
    assert!(stdout.contains("NEW"), "{stdout}");
    assert!(stdout.contains("err = "), "{stdout}");
    assert!(stdout.contains("peak"), "{stdout}");
}

#[test]
fn dimension_contraction_flag_collapses_sweep() {
    let (stdout, stderr, ok) = zlc(&[
        &program_path("sweep.zl"),
        "--dimension-contraction",
        "--print",
        "report",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("contracted to a slice"), "{stdout}");
}

#[test]
fn machine_simulation_reports_comm() {
    let (stdout, stderr, ok) = zlc(&[
        &program_path("heat.zl"),
        "--run",
        "--machine",
        "t3e",
        "--procs",
        "16",
        "--set",
        "n=16",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("Cray T3E x16"), "{stdout}");
    assert!(stdout.contains("msgs"), "{stdout}");
}

#[test]
fn print_loops_shows_fused_nests() {
    let (stdout, _, ok) = zlc(&[
        &program_path("fragment5.zl"),
        "--level",
        "c1",
        "--print",
        "loops",
    ]);
    assert!(ok);
    assert!(stdout.contains("for i"), "{stdout}");
    // The offset self-update fuses via loop reversal at c1.
    assert!(stdout.contains("downto"), "{stdout}");
}

#[test]
fn asdg_dot_output() {
    let (stdout, _, ok) = zlc(&[&program_path("sweep.zl"), "--print", "asdg"]);
    assert!(ok);
    assert!(stdout.contains("digraph asdg"), "{stdout}");
    assert!(stdout.contains("flow"), "{stdout}");
}

#[test]
fn verify_flag_reports_clean_examples() {
    for example in ["heat.zl", "sweep.zl", "fragment5.zl"] {
        let (stdout, stderr, ok) = zlc(&[&program_path(example), "--verify"]);
        assert!(ok, "{example}: {stderr}");
        assert!(stdout.contains("verify: ok"), "{example}: {stdout}");
        assert!(stderr.is_empty(), "{example}: {stderr}");
    }
}

#[test]
fn verify_composes_with_run_and_verified_engine() {
    let (stdout, stderr, ok) = zlc(&[
        &program_path("heat.zl"),
        "--verify",
        "--run",
        "--engine",
        "vm-verified",
        "--set",
        "n=16",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("verify: ok"), "{stdout}");
    assert!(stdout.contains("err = "), "{stdout}");
}

#[test]
fn bad_inputs_fail_cleanly() {
    let (_, stderr, ok) = zlc(&["/nonexistent.zl"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");

    let (_, stderr, ok) = zlc(&[&program_path("heat.zl"), "--level", "bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown level"), "{stderr}");

    let (_, stderr, ok) = zlc(&[&program_path("heat.zl"), "--run", "--set", "nonesuch=3"]);
    assert!(!ok);
    assert!(stderr.contains("no config named"), "{stderr}");

    let (_, stderr, ok) = zlc(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
}
