//! Differential testing of the two execution engines.
//!
//! The bytecode VM is only useful if it is indistinguishable from the
//! reference tree-walking interpreter. For every benchmark at every
//! transformation level this harness asserts that the two engines produce
//!
//! * bitwise-identical scalar results (every scalar, compared by bits so
//!   `-0.0` vs `0.0` or NaN-payload drift cannot hide),
//! * identical [`RunStats`] (points, loads, stores, flops, allocations,
//!   peak bytes), and
//! * an identical memory-access stream as seen by the `machine` crate's
//!   cache simulator (equal hit/miss counters on a real cache geometry).

use zpl_fusion::prelude::*;
use zpl_fusion::sim::presets::t3e;
use zpl_fusion::sim::MemSim;

fn outcomes(
    opt: &zpl_fusion::fusion::pipeline::Optimized,
    binding: &ConfigBinding,
) -> Vec<(Engine, RunOutcome, zpl_fusion::sim::MemStats)> {
    let m = t3e();
    Engine::all()
        .into_iter()
        .map(|engine| {
            let mut sim = MemSim::new(m.l1, m.l2);
            let mut exec = engine.executor(&opt.scalarized, binding.clone()).unwrap();
            let out = exec.execute(&mut sim).unwrap();
            (engine, out, sim.stats())
        })
        .collect()
}

#[test]
fn engines_agree_on_every_benchmark_at_every_level() {
    for bench in zpl_fusion::workloads::all() {
        let n = match bench.rank {
            1 => 512,
            2 => 12,
            _ => 6,
        };
        for level in Level::all() {
            let opt = Pipeline::new(level).optimize(&bench.program());
            let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
            binding.set_by_name(&opt.scalarized.program, bench.size_config, n);
            let rs = outcomes(&opt, &binding);
            let (e0, out0, mem0) = &rs[0];
            for (e, out, mem) in &rs[1..] {
                let ctx = format!("{} at {level}: {e0} vs {e}", bench.name);
                for (i, (a, b)) in out0.scalars.iter().zip(&out.scalars).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{ctx}: scalar {i} differs ({a} vs {b})"
                    );
                }
                assert_eq!(out0.checksum().to_bits(), out.checksum().to_bits(), "{ctx}");
                assert_eq!(out0.stats, out.stats, "{ctx}: RunStats differ");
                assert_eq!(
                    mem0, mem,
                    "{ctx}: cache simulator saw a different access stream"
                );
            }
        }
    }
}

#[test]
fn vm_par_is_bit_identical_to_interp_at_every_thread_count() {
    // The parallel tiled engine promises results independent of the
    // thread count: tile decomposition is static, reductions never split,
    // and per-tile stats merge in tile order. Sweep 1/2/4 threads against
    // the reference interpreter on every benchmark at every level.
    for bench in zpl_fusion::workloads::all() {
        let n = match bench.rank {
            1 => 512,
            2 => 12,
            _ => 6,
        };
        for level in Level::all() {
            let opt = Pipeline::new(level).optimize(&bench.program());
            let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
            binding.set_by_name(&opt.scalarized.program, bench.size_config, n);
            let mut interp = Engine::Interp
                .executor(&opt.scalarized, binding.clone())
                .unwrap();
            let reference = interp.execute(&mut NoopObserver).unwrap();
            for threads in [1usize, 2, 4] {
                let mut exec = Engine::VmPar
                    .executor_with(
                        &opt.scalarized,
                        binding.clone(),
                        ExecOpts::with_threads(threads),
                    )
                    .unwrap();
                let out = exec.execute(&mut NoopObserver).unwrap();
                let ctx = format!("{} at {level}, {threads} threads", bench.name);
                for (i, (a, b)) in reference.scalars.iter().zip(&out.scalars).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{ctx}: scalar {i} differs ({a} vs {b})"
                    );
                }
                assert_eq!(
                    reference.checksum().to_bits(),
                    out.checksum().to_bits(),
                    "{ctx}"
                );
                assert_eq!(reference.stats, out.stats, "{ctx}: RunStats differ");
            }
        }
    }
}

#[test]
fn engines_agree_under_dimension_contraction() {
    // The Outer construct takes a different compilation path in the VM;
    // make sure the extension stays bit-identical too.
    for bench in zpl_fusion::workloads::all() {
        let opt = Pipeline::new(Level::C2)
            .with_dimension_contraction()
            .optimize(&bench.program());
        let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
        let n = if bench.rank == 1 { 256 } else { 8 };
        binding.set_by_name(&opt.scalarized.program, bench.size_config, n);
        let rs = outcomes(&opt, &binding);
        let (_, out0, mem0) = &rs[0];
        for (e, out, mem) in &rs[1..] {
            assert_eq!(out0, out, "{} +dim ({e})", bench.name);
            assert_eq!(mem0, mem, "{} +dim ({e}): cache stream", bench.name);
        }
    }
}
