//! Integration tests for the serving path: the content-addressed compile
//! cache, its supervisor integration, and concurrent batch replay.

use fusion_core::serve::{serve, ServeRequest};
use fusion_core::{CacheKey, CompileCache, Level, RunRequest};
use loopir::Engine;
use std::sync::Arc;

const HEAT: &str = r#"
program heat;
config n : int = 24;
region R = [1..n];
region I = [2..n-1];
var A, B : [R] float;
var err : float;
begin
  [R] A := 1.0;
  [I] B := (A@[-1] + A@[1]) / 2.0;
  err := max<< [I] B;
end
"#;

/// Cache accounting is exact across a serve batch: one miss per distinct
/// (program, level, engine, binding) coordinate, hits for every repeat.
#[test]
fn serve_accounting_one_miss_per_distinct_key() {
    let engines = Engine::all();
    let repeats = 10;
    let batch: Vec<ServeRequest> = (0..engines.len() * repeats)
        .map(|i| {
            ServeRequest::new(
                "heat",
                HEAT,
                RunRequest::new().with_engine(engines[i % engines.len()]),
            )
        })
        .collect();
    let cache = Arc::new(CompileCache::new());
    let report = serve(&batch, 4, &cache);
    assert_eq!(report.completed(), batch.len());
    assert_eq!(report.cache.misses, engines.len() as u64);
    assert_eq!(report.cache.insertions, engines.len() as u64);
    assert_eq!(
        report.cache.hits,
        (engines.len() * (repeats - 1)) as u64,
        "{:?}",
        report.cache
    );
    assert_eq!(cache.len(), engines.len());
}

/// N threads hammering one key concurrently all get bit-identical
/// outcomes, and single-flight claiming compiles the program exactly
/// once: the racers wait out the first miss and count as hits.
#[test]
fn concurrent_hits_are_bit_identical() {
    let cache = Arc::new(CompileCache::new());
    let program = zlang::compile(HEAT).unwrap();
    let req = RunRequest::new().with_engine(Engine::VmVerified);
    let threads = 8;
    let per_thread = 16;
    let mut handles = Vec::new();
    for _ in 0..threads {
        let cache = cache.clone();
        let program = program.clone();
        let req = req.clone();
        handles.push(std::thread::spawn(move || {
            (0..per_thread)
                .map(|_| {
                    let (cached, _) = cache.get_or_compile(&program, &req).unwrap();
                    let out = cached.executor(req.exec_opts()).execute_pure().unwrap();
                    out.scalars.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        }));
    }
    let mut all: Vec<Vec<u64>> = Vec::new();
    for h in handles {
        all.extend(h.join().unwrap());
    }
    assert_eq!(all.len(), threads * per_thread);
    for bits in &all {
        assert_eq!(bits, &all[0], "concurrent executions diverged");
    }
    let stats = cache.stats();
    // Exactly one miss (the claimant); every other lookup — including
    // the threads that waited on the in-flight compile — is a hit.
    assert_eq!(stats.misses, 1, "{stats:?}");
    assert_eq!(stats.insertions, 1, "{stats:?}");
    assert_eq!(stats.hits, (threads * per_thread - 1) as u64, "{stats:?}");
}

/// A cache-attached supervisor publishes on its first run and reuses the
/// artifact afterwards — including across engine-coordinate reruns.
#[test]
fn supervisor_runs_hit_the_attached_cache() {
    let cache = Arc::new(CompileCache::new());
    let req = RunRequest::new().with_engine(Engine::Vm);
    let first = req
        .supervisor()
        .with_cache(cache.clone())
        .run_source(HEAT)
        .unwrap();
    let s0 = cache.stats();
    assert_eq!((s0.hits, s0.misses, s0.insertions), (0, 1, 1));
    let second = req
        .supervisor()
        .with_cache(cache.clone())
        .run_source(HEAT)
        .unwrap();
    let s1 = cache.stats();
    assert_eq!((s1.hits, s1.misses, s1.insertions), (1, 1, 1));
    assert_eq!(
        first.outcome.checksum().to_bits(),
        second.outcome.checksum().to_bits()
    );
    // The cached artifact is addressable by the exact request key.
    let program = zlang::compile(HEAT).unwrap();
    let binding = req.binding_for(&program).unwrap();
    let key = CacheKey::for_request(&program, &binding, &req);
    assert!(cache.lookup(&key).is_some());
}

/// The cached artifact at every level matches a cache-free compile of
/// the same source, bit for bit, on every engine.
#[test]
fn cached_results_match_uncached_at_all_levels() {
    for level in Level::all() {
        let cache = CompileCache::new();
        for engine in Engine::all() {
            let req = RunRequest::new().with_level(level).with_engine(engine);
            let program = zlang::compile(HEAT).unwrap();
            let (cached, hit) = cache.get_or_compile(&program, &req).unwrap();
            assert!(!hit, "{level:?} {engine}");
            let cold = cached.executor(req.exec_opts()).execute_pure().unwrap();
            let uncached = req.supervisor().run_source(HEAT).unwrap();
            assert_eq!(
                cold.checksum().to_bits(),
                uncached.outcome.checksum().to_bits(),
                "{level:?} on {engine}: cached vs supervisor"
            );
            let (again, hit) = cache.get_or_compile(&program, &req).unwrap();
            assert!(hit);
            let warm = again.executor(req.exec_opts()).execute_pure().unwrap();
            assert_eq!(cold.checksum().to_bits(), warm.checksum().to_bits());
        }
    }
}

/// Eviction keeps serving correct results: a cache one entry wide keeps
/// thrashing between two coordinates and still answers both exactly.
#[test]
fn eviction_thrash_stays_correct() {
    let cache = Arc::new(CompileCache::with_shards(1, 1));
    let a = RunRequest::new().with_engine(Engine::Vm);
    let b = RunRequest::new().with_engine(Engine::Interp);
    let program = zlang::compile(HEAT).unwrap();
    let (first_a, _) = cache.get_or_compile(&program, &a).unwrap();
    let want = first_a.executor(a.exec_opts()).execute_pure().unwrap();
    for _ in 0..4 {
        for req in [&a, &b] {
            let (c, _) = cache.get_or_compile(&program, req).unwrap();
            let out = c.executor(req.exec_opts()).execute_pure().unwrap();
            assert_eq!(out.checksum().to_bits(), want.checksum().to_bits());
        }
    }
    assert!(cache.stats().evictions >= 6, "{:?}", cache.stats());
    assert_eq!(cache.len(), 1);
}
