//! Chaos differential suite: generated programs under injected faults.
//!
//! Every generated program is run twice: once plainly at `baseline` on the
//! interpreter (the O0 reference), and once under the supervisor at
//! `c2+f3` on the verified VM with a fault injected somewhere in the
//! pipeline. Whatever the supervisor has to do to survive — degrade the
//! engine, recompile at a lower level, drop the machine simulation, fall
//! all the way to the reference rung — the answer it hands back must be
//! the bit-identical checksum of the unoptimized interpreter.
//!
//! The seed comes from `CHAOS_SEED` (default 1) so CI can rotate schedules
//! without touching the source.

use fusion_core::pipeline::{Level, Pipeline};
use fusion_core::supervisor::{Budgets, Supervisor};
use loopir::{Engine, NoopObserver};
use machine::presets::MachineKind;
use runtime::{simulate_outcome, CommPolicy, ExecConfig};
use std::time::Duration;
use testkit::faults::{self, FaultPlan, FaultSite};
use testkit::{genprog, Rng};
use zlang::ir::{ConfigBinding, Program, ScalarId};

/// How many generated programs the suite pushes through the supervisor.
const PROGRAMS: usize = 210;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// The fault classes the ladder must survive. Injected sites come from the
/// fault plan; `Fuel` and `Deadline` are budget exhaustions with no site.
#[derive(Debug, Clone, Copy, PartialEq)]
enum FaultClass {
    Inject(FaultSite),
    Fuel,
    Deadline,
}

const CLASSES: [FaultClass; 7] = [
    FaultClass::Inject(FaultSite::FuseGrow),
    FaultClass::Inject(FaultSite::VerifyReject),
    FaultClass::Inject(FaultSite::VmTrap),
    FaultClass::Inject(FaultSite::CommDrop),
    FaultClass::Inject(FaultSite::CommDup),
    FaultClass::Fuel,
    FaultClass::Deadline,
];

/// The two checksum scalars every generated program declares first.
fn checksums(outcome: &loopir::RunOutcome) -> (u64, u64) {
    (
        outcome.scalar(ScalarId(0)).to_bits(),
        outcome.scalar(ScalarId(1)).to_bits(),
    )
}

/// The O0 reference: baseline level, plain interpreter, no supervisor.
fn reference(program: &Program) -> (u64, u64) {
    let opt = Pipeline::new(Level::Baseline).optimize(program);
    let binding = ConfigBinding::defaults(&opt.scalarized.program);
    let outcome = Engine::Interp
        .executor(&opt.scalarized, binding)
        .expect("reference compiles")
        .execute(&mut NoopObserver)
        .expect("reference runs");
    checksums(&outcome)
}

/// A supervisor requesting the most aggressive configuration, so a fault
/// has the whole ladder to fall down. Comm fault classes attach the
/// machine-simulation backend (the only path that exercises the ghost
/// message channel).
fn supervised(program: &Program, class: FaultClass) -> fusion_core::Supervised {
    let budgets = match class {
        FaultClass::Fuel => Budgets {
            fuel: Some(0),
            ..Budgets::none()
        },
        FaultClass::Deadline => Budgets {
            deadline: Some(Duration::ZERO),
            ..Budgets::none()
        },
        FaultClass::Inject(_) => Budgets::none(),
    };
    let mut sup = Supervisor::new(Level::C2F3, Engine::VmVerified).with_budgets(budgets);
    if matches!(
        class,
        FaultClass::Inject(FaultSite::CommDrop) | FaultClass::Inject(FaultSite::CommDup)
    ) {
        let machine = MachineKind::T3e.machine();
        sup = sup.with_sim(move |sp, binding, engine, limits| {
            let cfg = ExecConfig {
                machine: machine.clone(),
                procs: 16,
                policy: CommPolicy::default(),
                engine,
                threads: 0,
                limits,
            };
            simulate_outcome(sp, binding.clone(), &cfg).map(|(outcome, _)| outcome)
        });
    }
    sup.run_program(program)
        .unwrap_or_else(|e| panic!("supervisor must survive {class:?}:\n{}", e.report.render()))
}

fn run_class(program: &Program, source: &str, class: FaultClass, want: (u64, u64)) {
    let plan = match class {
        FaultClass::Inject(site) => FaultPlan::new(chaos_seed()).with(site, 1.0),
        _ => FaultPlan::new(chaos_seed()),
    };
    let _guard = faults::install(plan);
    let run = supervised(program, class);
    let fired = faults::fired();
    drop(_guard);

    let got = checksums(&run.outcome);
    assert_eq!(
        got,
        want,
        "checksum mismatch under {class:?}\n{}\nprogram:\n{source}",
        run.report.render()
    );

    match class {
        // Pipeline/engine faults always fire on the first attempt and must
        // be named in the report; the run cannot end where it started.
        FaultClass::Inject(
            site @ (FaultSite::FuseGrow | FaultSite::VerifyReject | FaultSite::VmTrap),
        ) => {
            assert!(
                fired.iter().any(|&(s, n)| s == site && n > 0),
                "{site} never fired:\n{source}"
            );
            assert!(
                run.report.mentions(site.name()),
                "report does not name {site}:\n{}",
                run.report.render()
            );
            assert!(run.report.degraded(), "{}", run.report.render());
        }
        // A permanently dropped exchange surfaces as a comm failure and a
        // sim-disabled retry of the same rung — if any exchange happened.
        FaultClass::Inject(FaultSite::CommDrop) => {
            if fired.iter().any(|&(s, _)| s == FaultSite::CommDrop) {
                assert!(
                    run.report.mentions(FaultSite::CommDrop.name()),
                    "{}",
                    run.report.render()
                );
                assert!(!run.report.degraded(), "{}", run.report.render());
            }
        }
        // Duplicated deliveries are semantically harmless: no degradation,
        // nothing to report.
        FaultClass::Inject(FaultSite::CommDup) => {
            assert!(!run.report.degraded(), "{}", run.report.render());
        }
        // Budget exhaustion drains every budgeted rung; only the
        // unbudgeted reference survives.
        FaultClass::Fuel => {
            assert!(run.report.mentions("fuel"), "{}", run.report.render());
            assert_eq!(run.report.final_level, Level::Baseline);
            assert_eq!(run.report.final_engine, Engine::Interp);
        }
        FaultClass::Deadline => {
            assert!(run.report.mentions("deadline"), "{}", run.report.render());
            assert_eq!(run.report.final_level, Level::Baseline);
            assert_eq!(run.report.final_engine, Engine::Interp);
        }
        // Serving-layer sites are exercised by tests/chaos_serve.rs; they
        // never appear in this suite's CLASSES.
        FaultClass::Inject(
            FaultSite::ServeStall | FaultSite::WorkerPanic | FaultSite::CacheCorrupt,
        ) => unreachable!("serving-layer fault sites are not in CLASSES"),
    }
}

/// The tentpole assertion: 210 generated programs, each through the
/// supervisor with a fault from one of the seven classes, every answer
/// bit-identical to the O0 interpreter.
#[test]
fn injected_faults_never_change_the_answer() {
    let mut rng = Rng::new(chaos_seed());
    for i in 0..PROGRAMS {
        let source = genprog::generate(&mut rng);
        let program = zlang::compile(&source)
            .unwrap_or_else(|e| panic!("generated program {i} must compile: {e}\n{source}"));
        let want = reference(&program);
        let class = CLASSES[i % CLASSES.len()];
        run_class(&program, &source, class, want);
    }
}

/// Sanity anchor for the differential: with no faults injected, the
/// supervised aggressive configuration already matches the reference and
/// reports a clean single attempt.
#[test]
fn clean_supervised_runs_match_the_reference() {
    let mut rng = Rng::new(chaos_seed().wrapping_add(0x9E37));
    for i in 0..24 {
        let source = genprog::generate(&mut rng);
        let program = zlang::compile(&source)
            .unwrap_or_else(|e| panic!("generated program {i} must compile: {e}\n{source}"));
        let want = reference(&program);
        let run = Supervisor::new(Level::C2F3, Engine::VmVerified)
            .run_program(&program)
            .expect("clean run succeeds");
        assert_eq!(checksums(&run.outcome), want, "program {i}:\n{source}");
        assert!(!run.report.degraded(), "{}", run.report.render());
        assert_eq!(run.report.attempts.len(), 1);
    }
}

/// The parallel tiled engine under supervision: clean runs at 1/2/4
/// worker threads must land on `vm-par` undegraded with the reference
/// checksum — the thread count must never leak into the answer.
#[test]
fn vm_par_clean_runs_match_the_reference_at_every_thread_count() {
    let mut rng = Rng::new(chaos_seed().wrapping_add(0x7A12));
    for i in 0..12 {
        let source = genprog::generate(&mut rng);
        let program = zlang::compile(&source)
            .unwrap_or_else(|e| panic!("generated program {i} must compile: {e}\n{source}"));
        let want = reference(&program);
        for threads in [1usize, 2, 4] {
            let run = Supervisor::new(Level::C2F3, Engine::VmPar)
                .with_threads(threads)
                .run_program(&program)
                .expect("clean vm-par run succeeds");
            assert_eq!(
                checksums(&run.outcome),
                want,
                "program {i}, {threads} threads:\n{source}"
            );
            assert!(!run.report.degraded(), "{}", run.report.render());
            assert_eq!(run.report.final_engine, Engine::VmPar);
        }
    }
}

/// Faults under the parallel engine: a trapped VM instruction or a
/// dropped exchange while `vm-par` leads the ladder must still resolve to
/// the reference answer at every thread count.
#[test]
fn vm_par_survives_injected_faults_at_every_thread_count() {
    let mut rng = Rng::new(chaos_seed().wrapping_add(0x9A71));
    for (i, site) in [
        FaultSite::VmTrap,
        FaultSite::CommDrop,
        FaultSite::VerifyReject,
    ]
    .into_iter()
    .enumerate()
    {
        for threads in [1usize, 2, 4] {
            let source = genprog::generate(&mut rng);
            let program = zlang::compile(&source)
                .unwrap_or_else(|e| panic!("generated program {i} must compile: {e}\n{source}"));
            let want = reference(&program);
            let _guard = faults::install(FaultPlan::new(chaos_seed()).with(site, 1.0));
            let mut sup = Supervisor::new(Level::C2F3, Engine::VmPar).with_threads(threads);
            if site == FaultSite::CommDrop {
                let machine = MachineKind::T3e.machine();
                let t = threads;
                sup = sup.with_sim(move |sp, binding, engine, limits| {
                    let cfg = ExecConfig {
                        machine: machine.clone(),
                        procs: 16,
                        policy: CommPolicy::default(),
                        engine,
                        threads: t,
                        limits,
                    };
                    simulate_outcome(sp, binding.clone(), &cfg).map(|(outcome, _)| outcome)
                });
            }
            let run = sup.run_program(&program).unwrap_or_else(|e| {
                panic!(
                    "vm-par must survive {site} at {threads} threads:\n{}",
                    e.report.render()
                )
            });
            drop(_guard);
            assert_eq!(
                checksums(&run.outcome),
                want,
                "{site} at {threads} threads:\n{source}"
            );
            if site != FaultSite::CommDrop {
                assert!(run.report.mentions(site.name()), "{}", run.report.render());
                assert!(run.report.degraded(), "{}", run.report.render());
            }
        }
    }
}

/// Faults at every site in the *same* run: the ladder composes.
#[test]
fn stacked_faults_still_produce_the_reference_answer() {
    let mut rng = Rng::new(chaos_seed().wrapping_add(0x51DE));
    for _ in 0..12 {
        let source = genprog::generate(&mut rng);
        let program = zlang::compile(&source).expect("generated program compiles");
        let want = reference(&program);
        let plan = FaultPlan::new(chaos_seed())
            .with(FaultSite::VerifyReject, 1.0)
            .with(FaultSite::VmTrap, 1.0);
        let _guard = faults::install(plan);
        let run = Supervisor::new(Level::C2F3, Engine::VmVerified)
            .run_program(&program)
            .unwrap_or_else(|e| panic!("ladder must bottom out:\n{}", e.report.render()));
        drop(_guard);
        assert_eq!(checksums(&run.outcome), want, "{source}");
        assert!(
            run.report.mentions("verify-reject"),
            "{}",
            run.report.render()
        );
        assert!(run.report.mentions("vm-trap"), "{}", run.report.render());
        assert_eq!(run.report.final_engine, Engine::Interp);
    }
}
