//! Differential tests for the lazy frontend: a runtime-recorded batch
//! must behave exactly like the equivalent static source program — same
//! structural hash, same results at every optimization level, on every
//! engine.

use fusion_core::hash::program_hash;
use fusion_core::{CompileCache, Level, RunRequest};
use lazy::Batch;
use loopir::Engine;

/// A representative batch: producer, stencil with a contractible
/// temporary, elementwise combine, and two reductions.
fn record() -> Batch {
    let mut b = Batch::new("diff");
    let grid = b.region(&[(1, 40)]);
    let interior = b.region(&[(2, 39)]);
    let a = b.store(grid, 0.5);
    let t = b.store(interior, (a.at(&[-1]) + 2.0 * a + a.at(&[1])) / 4.0);
    let u = b.store(interior, t * t - a);
    let _hi = b.max(interior, u);
    let _sum = b.sum(interior, u + 1.0);
    b
}

/// The hand-written zlang source equivalent to [`record`].
const STATIC_SRC: &str = r#"
program diff;
region R0 = [1..40];
region R1 = [2..39];
var a0 : [R0] float;
var a1, a2 : [R1] float;
var s0, s1 : float;
begin
  [R0] a0 := 0.5;
  [R1] a1 := (a0@[-1] + 2.0 * a0 + a0@[1]) / 4.0;
  [R1] a2 := a1 * a1 - a0;
  s0 := max<< [R1] a2;
  s1 := +<< [R1] (a2 + 1.0);
end
"#;

/// The recorded program and the static source compile to equal programs
/// with equal structural hashes — the property that makes lazy batches
/// cache-compatible with their static twins.
#[test]
fn recorded_batch_equals_static_source() {
    let b = record();
    let from_source = zlang::compile(STATIC_SRC).unwrap();
    assert_eq!(*b.program(), from_source);
    assert_eq!(program_hash(b.program()), program_hash(&from_source));
}

/// Re-recording is deterministic, and pretty-printing the recorded batch
/// round-trips to the same hash (the interned-name invariant).
#[test]
fn recording_and_print_round_trips_are_hash_stable() {
    let h1 = program_hash(record().program());
    let h2 = program_hash(record().program());
    assert_eq!(h1, h2);
    let reparsed = zlang::compile(&record().source()).unwrap();
    assert_eq!(h1, program_hash(&reparsed));
}

/// The full sweep: the lazy batch matches the static compile bit for bit
/// at every one of the paper's 8 levels. `Engine::Interp` on the static
/// program is the ground truth; the lazy side runs on the VM to cross
/// engines at the same time.
#[test]
fn lazy_matches_static_at_all_levels() {
    let b = record();
    let static_program = zlang::compile(STATIC_SRC).unwrap();
    for level in Level::all() {
        let truth_req = RunRequest::new()
            .with_level(level)
            .with_engine(Engine::Interp);
        let cache = CompileCache::new();
        let (truth, _) = cache.get_or_compile(&static_program, &truth_req).unwrap();
        let want = truth
            .executor(truth_req.exec_opts())
            .execute_pure()
            .unwrap();
        for engine in [Engine::Vm, Engine::VmVerified, Engine::VmPar] {
            let req = RunRequest::new().with_level(level).with_engine(engine);
            let (out, _) = b.flush(&req, &cache).unwrap();
            assert_eq!(
                out.outcome
                    .scalars
                    .iter()
                    .map(|s| s.to_bits())
                    .collect::<Vec<_>>(),
                want.scalars.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                "lazy {engine} at {} diverged from static interp",
                level.name()
            );
        }
    }
}

/// Two differently-shaped recordings never collide in one cache, and
/// each hits on its own repeat.
#[test]
fn distinct_recordings_do_not_cross_hit() {
    let cache = CompileCache::new();
    let req = RunRequest::new();
    let (_, hit_a1) = record().flush(&req, &cache).unwrap();
    let mut other = Batch::new("diff");
    let r = other.region(&[(1, 40)]);
    let x = other.store(r, 0.5);
    let _s = other.sum(r, x);
    let (_, hit_b1) = other.flush(&req, &cache).unwrap();
    assert!(!hit_a1 && !hit_b1, "different structure, same name: no hit");
    let (_, hit_a2) = record().flush(&req, &cache).unwrap();
    let (_, hit_b2) = other.flush(&req, &cache).unwrap();
    assert!(hit_a2 && hit_b2);
}
