//! Differential suite for the two-tier ISA: superinstruction bytecode
//! with lane-based innermost-loop dispatch.
//!
//! The `vm-simd` and `vm-par` engines run a different instruction stream
//! from the scalar engines — the post-compile peephole collapses fused
//! element-wise chains into superinstructions and annotates provably
//! vectorizable innermost loops, which the dispatch loop then executes
//! over unrolled f64 lanes with a scalar epilogue. None of that may be
//! observable: this harness sweeps generated random and stencil-shaped
//! programs (the `testkit::genprog` generators) across lane widths 1, 2,
//! and 8 and every engine, and insists every scalar stays *bit-identical*
//! to the unoptimized reference interpreter, with identical execution
//! counters. A second pass drives the same sweep through the paper
//! benchmarks at every level.

use testkit::{genprog, Rng};
use zlang::ir::{Program, ScalarId};
use zpl_fusion::prelude::*;

/// Generated programs per generator per sweep.
const PROGRAMS: u64 = 15;

/// The lane widths under test: scalar dispatch over superinstruction
/// bytecode (1), the alias-cap boundary (2), and the maximum (8).
const LANES: [usize; 3] = [1, 2, 8];

/// The two checksum scalars every generated program declares first.
fn checksums(out: &RunOutcome) -> (u64, u64) {
    (
        out.scalar(ScalarId(0)).to_bits(),
        out.scalar(ScalarId(1)).to_bits(),
    )
}

/// The reference: the tree-walking interpreter on the same optimized
/// program (the optimizer is common to every engine; only execution is
/// under test here).
fn run(
    opt: &zpl_fusion::fusion::pipeline::Optimized,
    binding: &ConfigBinding,
    engine: Engine,
    lanes: usize,
) -> RunOutcome {
    engine
        .executor_with(
            &opt.scalarized,
            binding.clone(),
            ExecOpts::with_lanes(lanes),
        )
        .unwrap_or_else(|e| panic!("{engine} x{lanes} refused to construct: {e}"))
        .execute(&mut NoopObserver)
        .unwrap_or_else(|e| panic!("{engine} x{lanes} failed: {e}"))
}

fn sweep(source: &str, ctx: &str) {
    let program: Program =
        zlang::compile(source).unwrap_or_else(|e| panic!("{ctx}: invalid program: {e}\n{source}"));
    let opt = Pipeline::new(Level::C2F3).optimize(&program);
    let binding = ConfigBinding::defaults(&opt.scalarized.program);
    let reference = run(&opt, &binding, Engine::Interp, 1);
    let expect = checksums(&reference);
    for engine in Engine::all() {
        for lanes in LANES {
            let out = run(&opt, &binding, engine, lanes);
            assert_eq!(
                checksums(&out),
                expect,
                "{ctx}: {engine} x{lanes} diverged from interp\n{source}"
            );
            assert_eq!(
                out.stats, reference.stats,
                "{ctx}: {engine} x{lanes} counters differ\n{source}"
            );
        }
    }
}

#[test]
fn random_programs_are_bit_identical_at_every_lane_width() {
    for seed in 0..PROGRAMS {
        let source = genprog::generate(&mut Rng::new(seed));
        sweep(&source, &format!("random seed {seed}"));
    }
}

#[test]
fn stencil_programs_are_bit_identical_at_every_lane_width() {
    for seed in 0..PROGRAMS {
        let source = genprog::generate_stencil(&mut Rng::new(seed));
        sweep(&source, &format!("stencil seed {seed}"));
    }
}

#[test]
fn benchmarks_are_bit_identical_at_every_lane_width_and_level() {
    for bench in zpl_fusion::workloads::all() {
        let n = match bench.rank {
            1 => 256,
            2 => 12,
            _ => 6,
        };
        for level in Level::all() {
            let opt = Pipeline::new(level).optimize(&bench.program());
            let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
            binding.set_by_name(&opt.scalarized.program, bench.size_config, n);
            let reference = run(&opt, &binding, Engine::Interp, 1);
            for engine in [Engine::VmSimd, Engine::VmPar] {
                for lanes in LANES {
                    let out = run(&opt, &binding, engine, lanes);
                    let ctx = format!("{} at {level}: {engine} x{lanes}", bench.name);
                    for (i, (a, b)) in reference.scalars.iter().zip(&out.scalars).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "{ctx}: scalar {i} differs ({a} vs {b})"
                        );
                    }
                    assert_eq!(reference.stats, out.stats, "{ctx}: RunStats differ");
                }
            }
        }
    }
}

#[test]
fn cache_simulation_sees_the_scalar_access_stream() {
    // Under an observer that consumes per-element addresses the lane path
    // must stand down entirely, so the cache simulator sees exactly the
    // access stream the scalar engines produce.
    use zpl_fusion::sim::presets::t3e;
    use zpl_fusion::sim::MemSim;
    let source = genprog::generate_stencil(&mut Rng::new(7));
    let program = zlang::compile(&source).unwrap();
    let opt = Pipeline::new(Level::C2F3).optimize(&program);
    let binding = ConfigBinding::defaults(&opt.scalarized.program);
    let m = t3e();
    let mut stats = Vec::new();
    for engine in [Engine::Vm, Engine::VmSimd] {
        let mut sim = MemSim::new(m.l1, m.l2);
        let mut exec = engine
            .executor_with(&opt.scalarized, binding.clone(), ExecOpts::with_lanes(8))
            .unwrap();
        exec.execute(&mut sim).unwrap();
        stats.push(sim.stats());
    }
    assert_eq!(
        stats[0], stats[1],
        "vm-simd changed the observed access stream under the cache simulator"
    );
}
