//! Translation validation over the whole pipeline.
//!
//! Runs the independent re-checkers of `fusion_core::verify` over every
//! benchmark at every optimization level (the paper's Section 5.4 sweep)
//! and asserts a clean bill; then corrupts a pipeline result on purpose
//! and asserts the validator localizes the damage and names the violated
//! paper definition. The compiled bytecode of every configuration must
//! also pass the `loopir` bytecode verifier, enabling the VM's unchecked
//! fast path.

use std::collections::BTreeSet;
use zpl_fusion::fusion::verify::{self, Severity};
use zpl_fusion::prelude::*;

#[test]
fn validator_is_clean_on_all_benchmarks_at_all_levels() {
    for bench in zpl_fusion::workloads::all() {
        for level in Level::all() {
            for dim in [false, true] {
                let mut p = Pipeline::new(level).with_verify(VerifyLevel::Always);
                if dim {
                    p = p.with_dimension_contraction();
                }
                let opt = p.optimize(&bench.program());
                assert!(
                    opt.diagnostics.is_empty(),
                    "{} at {level}{}: {:?}",
                    bench.name,
                    if dim { " +dim" } else { "" },
                    opt.diagnostics
                );
            }
        }
    }
}

#[test]
fn verify_off_and_on_failure_report_nothing_on_clean_programs() {
    let bench = &zpl_fusion::workloads::all()[0];
    for level in [VerifyLevel::Off, VerifyLevel::OnFailure] {
        let opt = Pipeline::new(Level::C2)
            .with_verify(level)
            .optimize(&bench.program());
        assert!(opt.diagnostics.is_empty(), "{level}: {:?}", opt.diagnostics);
    }
}

/// Corrupting the final partition — fusing two clusters the pipeline kept
/// apart — must produce an error diagnostic citing Definition 5.
#[test]
fn injected_illegal_fusion_names_the_violated_definition() {
    let program = zpl_fusion::lang::compile(
        "program bad;
         config n : int = 8;
         region R = [1..n, 1..n];
         region S = [1..n];
         var A, B : [R] float;
         var U, V : [S] float;
         begin
           [R] B := A + A;
           [S] V := U + U;
         end",
    )
    .unwrap();
    let opt = Pipeline::new(Level::C2)
        .with_verify(VerifyLevel::Always)
        .optimize(&program);
    assert!(opt.diagnostics.is_empty(), "{:?}", opt.diagnostics);

    // Fuse the R-statement's cluster with the S-statement's cluster: the
    // regions do not conform, so the merged cluster is illegal.
    let mut bad = opt.clone();
    let detail = &mut bad.details[0];
    let c0 = detail.partition.cluster_of(0);
    let c1 = detail.partition.cluster_of(1);
    assert_ne!(c0, c1, "pipeline should not have fused across regions");
    detail.partition.merge(&BTreeSet::from([c0, c1]));

    let diags = verify::validate(&bad);
    let err = diags
        .iter()
        .find(|d| d.severity == Severity::Error)
        .unwrap_or_else(|| panic!("expected an error diagnostic, got {diags:?}"));
    assert!(
        err.render().contains("Definition 5"),
        "diagnostic should cite Definition 5 (legal fusion partitions): {}",
        err.render()
    );
}

#[test]
fn bytecode_verifier_accepts_every_benchmark_configuration() {
    for bench in zpl_fusion::workloads::all() {
        let n = if bench.rank == 1 { 64 } else { 8 };
        for level in Level::all() {
            let opt = Pipeline::new(level).optimize(&bench.program());
            let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
            binding.set_by_name(&opt.scalarized.program, bench.size_config, n);
            let mut vm = Vm::new(&opt.scalarized, binding).unwrap();
            let r = vm.verify();
            assert!(r.is_ok(), "{} at {level}: {:?}", bench.name, r.err());
            assert!(vm.is_verified());
        }
    }
}
