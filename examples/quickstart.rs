//! Quickstart: compile an array-language program, fuse and contract at the
//! paper's `c2` level, inspect the generated loop nests, and execute it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use zpl_fusion::fusion::pipeline::{Level, Pipeline};
use zpl_fusion::lang;
use zpl_fusion::loops::{printer, Interp, NoopObserver};
use zpl_fusion::prelude::ConfigBinding;

const SOURCE: &str = r#"
program quickstart;

config n : int = 8;

region R = [1..n, 1..n];

var A, B, C : [R] float;
var total : float;

begin
  -- B and C are temporaries: written once, consumed once.
  [R] A := index1 * 10.0 + index2;
  [R] B := A + A;
  [R] C := B * B;
  total := +<< [R] C;
end
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = lang::compile(SOURCE)?;
    println!("=== source (array IR) ===\n{}", lang::pretty::program(&program));

    for level in [Level::Baseline, Level::C2] {
        let opt = Pipeline::new(level).optimize(&program);
        println!("=== scalarized at {level} ===");
        println!(
            "loop nests: {}   arrays allocated: {}   contracted: {:?}",
            opt.scalarized.nest_count(),
            opt.scalarized.live_arrays().len(),
            opt.contracted_names(),
        );
        println!("{}", printer::print(&opt.scalarized));

        let binding = ConfigBinding::defaults(&opt.scalarized.program);
        let mut interp = Interp::new(&opt.scalarized, binding);
        let stats = interp.run(&mut NoopObserver)?;
        let total = interp.scalar(opt.scalarized.program.scalar_by_name("total").unwrap());
        println!(
            "executed: {} points, {} loads, {} stores, peak {} bytes, total = {total}\n",
            stats.points, stats.loads, stats.stores, stats.peak_bytes
        );
    }
    Ok(())
}
