//! Quickstart: compile an array-language program, fuse and contract at the
//! paper's `c2` level, inspect the generated loop nests, and execute it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use zpl_fusion::loops::printer;
use zpl_fusion::prelude::*;

const SOURCE: &str = r#"
program quickstart;

config n : int = 8;

region R = [1..n, 1..n];

var A, B, C : [R] float;
var total : float;

begin
  -- B and C are temporaries: written once, consumed once.
  [R] A := index1 * 10.0 + index2;
  [R] B := A + A;
  [R] C := B * B;
  total := +<< [R] C;
end
"#;

fn main() -> Result<(), zpl_fusion::Error> {
    let program = zpl_fusion::lang::compile(SOURCE)?;
    println!(
        "=== source (array IR) ===\n{}",
        zpl_fusion::lang::pretty::program(&program)
    );

    for level in [Level::Baseline, Level::C2] {
        let opt = Pipeline::new(level).optimize(&program);
        println!("=== scalarized at {level} ===");
        println!(
            "loop nests: {}   arrays allocated: {}   contracted: {:?}",
            opt.scalarized.nest_count(),
            opt.scalarized.live_arrays().len(),
            opt.contracted_names(),
        );
        println!("{}", printer::print(&opt.scalarized));

        let binding = ConfigBinding::defaults(&opt.scalarized.program);
        let mut exec = Engine::default().executor(&opt.scalarized, binding)?;
        let out = exec.execute(&mut NoopObserver)?;
        let total = out.scalar(opt.scalarized.program.scalar_by_name("total").unwrap());
        println!(
            "executed: {} points, {} loads, {} stores, peak {} bytes, total = {total}\n",
            out.stats.points, out.stats.loads, out.stats.stores, out.stats.peak_bytes
        );
    }
    Ok(())
}
