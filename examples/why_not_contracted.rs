//! Why-not-contracted: run every benchmark through `c2` and explain, per
//! array, whether it contracted and — if not — exactly what blocked it
//! (live across blocks, carried flow dependence, region mismatch, or a
//! heavier candidate's fusion claiming the statements first).
//!
//! ```text
//! cargo run --example why_not_contracted [benchmark]
//! ```

use zpl_fusion::fusion::explain;
use zpl_fusion::fusion::pipeline::{Level, Pipeline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let filter = std::env::args().nth(1);
    for bench in zpl_fusion::workloads::all() {
        if let Some(f) = &filter {
            if bench.name != f {
                continue;
            }
        }
        println!("================ {} ================", bench.name);
        let opt = Pipeline::new(Level::C2).optimize(&bench.program());
        print!("{}", explain::report(&opt));
        println!();
    }
    Ok(())
}
