//! Fragment gallery: print every Figure 5 fragment with the loop nests the
//! full optimizer produces — the quickest way to see fusion, loop
//! reversal, and contraction on the paper's own test cases.
//!
//! ```text
//! cargo run --example fragment_gallery
//! ```

use zpl_fusion::fusion::pipeline::{Level, Pipeline};
use zpl_fusion::loops::printer;
use zpl_fusion::models::fragments;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for frag in fragments() {
        println!("======================================================");
        println!("fragment {} — {}", frag.id, frag.what);
        println!("======================================================");
        let program = zpl_fusion::lang::compile(frag.source)?;
        let base = Pipeline::new(Level::Baseline).optimize(&program);
        let opt = Pipeline::new(Level::C2F3).optimize(&program);
        println!(
            "--- unoptimized ({} nests) ---",
            base.scalarized.nest_count()
        );
        println!("{}", printer::print(&base.scalarized));
        println!(
            "--- c2+f3 ({} nests, contracted {:?}) ---",
            opt.scalarized.nest_count(),
            opt.contracted_names()
        );
        println!("{}", printer::print(&opt.scalarized));
    }
    Ok(())
}
