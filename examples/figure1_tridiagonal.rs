//! The paper's Figure 1: the tridiagonal-systems-solver fragment from
//! Tomcatv, where the array language needs a whole temporary array `R`
//! per row while the hand-written Fortran 77 equivalent uses only the
//! scalar `s`. Statement fusion plus contraction recovers exactly that:
//! run this example and watch `R` (and the self-update temporaries)
//! disappear from the generated code.
//!
//! ```text
//! cargo run --example figure1_tridiagonal
//! ```

use zpl_fusion::fusion::explain;
use zpl_fusion::loops::printer;
use zpl_fusion::prelude::*;

/// Figure 1(a), transliterated: the loop over rows `i` carries the
/// recurrence; each row is a rank-1 array statement. `D`, `RX`, `RY` hold
/// the *previous* row's values at the top of each iteration.
const SOURCE: &str = r#"
program tridiag;

config m    : int = 64;   -- columns
config rows : int = 64;   -- rows swept

region ROW = [1..m];

var AA, DD    : [ROW] float;   -- per-row coefficients
var R         : [ROW] float;   -- the Figure 1 temporary
var D, RX, RY : [ROW] float;   -- recurrence state (persist across rows)

var i : int;
var chk : float;

begin
  [ROW] D  := 1.0;
  [ROW] RX := index1 * 0.01;
  [ROW] RY := 0.5;

  for i := 2 to rows do
    [ROW] AA := 0.1 + 0.1 * rnd(index1 + i * 977.0);
    [ROW] DD := 2.0 + 0.1 * rnd(index1 * 3.0 + i);
    [ROW] R  := AA * D;               -- R(i,:) = AA(i,:) * D(i-1,:)
    [ROW] D  := 1.0 / (DD - AA * R);  -- D(i,:)
    [ROW] RX := RX - RX * R;          -- Rx(i,:) = Rx(i,:) - Rx(i-1,:)*R(i,:)
    [ROW] RY := RY - RY * R;
  end;

  chk := +<< [ROW] D + RX + RY;
end
"#;

fn main() -> Result<(), zpl_fusion::Error> {
    let program = zpl_fusion::lang::compile(SOURCE)?;
    println!("Figure 1 — the tridiagonal solver fragment\n");

    for level in [Level::Baseline, Level::C2] {
        let opt = Pipeline::new(level).optimize(&program);
        println!("=== {} ===", level);
        println!(
            "arrays allocated: {:?}",
            opt.scalarized
                .live_arrays()
                .iter()
                .map(|&a| opt.norm.program.array(a).name.clone())
                .collect::<Vec<_>>()
        );
        println!("{}", printer::print(&opt.scalarized));
        let mut exec = Engine::default().executor(
            &opt.scalarized,
            ConfigBinding::defaults(&opt.scalarized.program),
        )?;
        let out = exec.execute(&mut NoopObserver)?;
        println!(
            "chk = {}   peak bytes = {}\n",
            out.scalar(opt.scalarized.program.scalar_by_name("chk").unwrap()),
            out.stats.peak_bytes
        );
    }

    let opt = Pipeline::new(Level::C2).optimize(&program);
    print!("{}", explain::report(&opt));
    println!(
        "\nThe paper: \"temporary array R ... can be viewed as a contracted form of the\n\
         full array\" — at c2, R became the scalar the Fortran 77 version writes by hand."
    );
    Ok(())
}
