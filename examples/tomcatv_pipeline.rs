//! Tomcatv end to end: run the paper's mesh-generation benchmark through
//! every optimization level, reporting static arrays, memory, cache
//! misses, and simulated time — a miniature of the paper's Figures 7–9 for
//! one application.
//!
//! ```text
//! cargo run --release --example tomcatv_pipeline
//! ```

use zpl_fusion::par::{simulate, CommPolicy, ExecConfig};
use zpl_fusion::prelude::*;
use zpl_fusion::sim::presets::t3e;
use zpl_fusion::workloads;

fn main() -> Result<(), zpl_fusion::Error> {
    let bench = workloads::by_name("tomcatv").expect("tomcatv is built in");
    let program = bench.program();
    println!("{}: {}\n", bench.name, bench.description);
    println!(
        "{:<10} {:>7} {:>8} {:>12} {:>10} {:>12} {:>10}",
        "level", "nests", "arrays", "contracted", "l1 misses", "peak bytes", "time (ms)"
    );

    let machine = t3e();
    let mut baseline = None;
    for level in Level::all() {
        let opt = Pipeline::new(level).optimize(&program);
        let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
        binding.set_by_name(&opt.scalarized.program, "n", 40);
        let cfg = ExecConfig {
            machine: machine.clone(),
            procs: 16,
            policy: CommPolicy::default(),
            engine: Engine::default(),
            threads: 0,
            limits: loopir::ExecLimits::none(),
        };
        let r = simulate(&opt.scalarized, binding, &cfg)?;
        let imp = match &baseline {
            None => {
                baseline = Some(r.clone());
                String::new()
            }
            Some(b) => format!("  ({:+.1}% vs baseline)", r.improvement_over(b)),
        };
        println!(
            "{:<10} {:>7} {:>8} {:>12} {:>10} {:>12} {:>10.3}{imp}",
            level.name(),
            opt.scalarized.nest_count(),
            opt.scalarized.live_arrays().len(),
            opt.contracted.len(),
            r.mem.l1_misses,
            r.run.peak_bytes,
            r.total_ms(),
        );
    }

    println!("\npaper reference (Figure 7): 19 arrays (4 compiler/15 user) -> 7 after contraction");
    Ok(())
}
