//! Compiler explorer: show how each commercial-compiler model treats the
//! paper's Figure 5 fragments — which statements fuse, which temporaries
//! contract, and the resulting loop nests.
//!
//! ```text
//! cargo run --example compiler_explorer            # summary matrix
//! cargo run --example compiler_explorer '(7)'      # detail one fragment
//! ```

use zpl_fusion::fusion::pipeline::Pipeline;
use zpl_fusion::loops::printer;
use zpl_fusion::models::{self, behavior_matrix, fragments};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arg = std::env::args().nth(1);
    match arg {
        None => {
            println!("{}", behavior_matrix().render());
            println!("run with a fragment id, e.g. `compiler_explorer '(7)'`, for detail");
        }
        Some(id) => {
            let frag = fragments()
                .into_iter()
                .find(|f| f.id == id)
                .ok_or_else(|| format!("no fragment {id}; try (1)..(8) or (8b)"))?;
            println!(
                "fragment {} — {}\n{}\n",
                frag.id,
                frag.what,
                frag.source.trim()
            );
            let program = zpl_fusion::lang::compile(frag.source)?;
            for model in models::model::all_models() {
                let opt = Pipeline::new(model.level)
                    .with_opts(model.fusion_opts())
                    .optimize(&program);
                println!(
                    "--- {} (level {}, anti-dep fusion {}) ---",
                    model.name,
                    model.level,
                    if model.no_loop_carried_anti {
                        "forbidden"
                    } else {
                        "allowed"
                    }
                );
                println!(
                    "nests: {}  contracted: {:?}",
                    opt.scalarized.nest_count(),
                    opt.contracted_names()
                );
                println!("{}", printer::print(&opt.scalarized));
            }
        }
    }
    Ok(())
}
