//! Heat solver: a Jacobi iteration with a convergence test, run under each
//! optimization level on all three simulated machines — the end-to-end
//! workflow a user of this library would follow to evaluate fusion and
//! contraction for their own code.
//!
//! ```text
//! cargo run --release --example heat_solver
//! ```

use zpl_fusion::par::{simulate, CommPolicy, ExecConfig};
use zpl_fusion::prelude::*;
use zpl_fusion::sim::presets::MachineKind;

const SOURCE: &str = r#"
program heat;

config n     : int = 48;
config steps : int = 4;

region RH = [0..n+1, 0..n+1];
region R  = [1..n, 1..n];

direction up = [-1, 0];
direction dn = [ 1, 0];
direction lt = [ 0,-1];
direction rt = [ 0, 1];

var T : [RH] float;          -- temperature (persistent)
var NEW, DELTA, SQ : [R] float;  -- temporaries (contractible)

var err : float;
var k : int;

begin
  -- Hot spot in the middle of a cold plate.
  [RH] T := select((index1 == n / 2) * (index2 == n / 2), 100.0, 0.0);

  for k := 1 to steps do
    [R] NEW   := (T@up + T@dn + T@lt + T@rt) * 0.25;
    [R] DELTA := NEW - T;
    [R] SQ    := DELTA * DELTA;
    err := +<< [R] SQ;
    [R] T := NEW;
  end;
end
"#;

fn main() -> Result<(), zpl_fusion::Error> {
    let program = zpl_fusion::lang::compile(SOURCE)?;
    println!(
        "heat solver: {} steps of Jacobi on a 48x48 plate, 16 processors\n",
        4
    );
    println!(
        "{:<10} {:>9} {:>12} {:>12} {:>10} {:>10}",
        "level", "nests", "arrays", "peak bytes", "messages", "time (ms)"
    );
    for kind in MachineKind::all() {
        println!("--- {} ---", kind.name());
        let machine = kind.machine();
        let mut baseline_ns = None;
        for level in [Level::Baseline, Level::C1, Level::C2, Level::C2F3] {
            let opt = Pipeline::new(level).optimize(&program);
            let binding = ConfigBinding::defaults(&opt.scalarized.program);
            let cfg = ExecConfig {
                machine: machine.clone(),
                procs: 16,
                policy: CommPolicy::default(),
                engine: Engine::default(),
                threads: 0,
                limits: loopir::ExecLimits::none(),
            };
            let r = simulate(&opt.scalarized, binding, &cfg)?;
            let speedup = match baseline_ns {
                None => {
                    baseline_ns = Some(r.total_ns);
                    String::from("(baseline)")
                }
                Some(b) => format!("({:+.1}%)", 100.0 * (b - r.total_ns) / b),
            };
            println!(
                "{:<10} {:>9} {:>12} {:>12} {:>10} {:>10.3} {speedup}",
                level.name(),
                opt.scalarized.nest_count(),
                opt.scalarized.live_arrays().len(),
                r.run.peak_bytes,
                r.comm.messages,
                r.total_ms(),
            );
        }
    }
    Ok(())
}
